// Serving-layer benchmarks: what a resident incremental engine buys over a
// per-request rebuild, measured through the EngineRegistry (the exact path
// the shapcq_server command loop takes).
//
//   BM_ServerWarmReport  resident engine, no intervening deltas: a report is
//                        memo-backed ranking (the steady-state hit path).
//   BM_ServerColdReport  1-byte budget: every report readmits an evicted
//                        session, i.e. a full Build + evaluation per request
//                        (the thrashing floor the LRU budget protects from).
//   BM_ServerDeltaReport resident engine, one delete+insert delta pair then
//                        a report (the mixed update/query workload).
//
// tools/check_server_speedup.py gates warm >= 5x cold on the recorded JSON.
// Arg = students in the q1-shaped scaling database (endo = 3s + ceil(s/2)).

#include <benchmark/benchmark.h>

#include <string>

#include "datasets/synthetic.h"
#include "datasets/university.h"
#include "service/engine_registry.h"

namespace {

using namespace shapcq;

// Opens a session for the q1 scaling database and replays its facts.
void LoadScalingSession(EngineRegistry* registry, const std::string& id,
                        const Database& db) {
  auto opened = registry->Open(id, UniversityQ1());
  SHAPCQ_CHECK_MSG(opened.ok(), opened.error().c_str());
  for (size_t slot = 0; slot < db.fact_slot_count(); ++slot) {
    const FactId fact = static_cast<FactId>(slot);
    MutationSpec mutation;
    mutation.op = MutationSpec::Op::kInsert;
    mutation.fact.relation = db.schema().name(db.relation_of(fact));
    mutation.fact.tuple = db.tuple_of(fact);
    mutation.fact.endogenous = db.is_endogenous(fact);
    auto applied = registry->ApplyMutation(id, mutation);
    SHAPCQ_CHECK_MSG(applied.ok(), applied.error().c_str());
  }
}

void BM_ServerWarmReport(benchmark::State& state) {
  const Database db = BuildStudentScalingDb(static_cast<int>(state.range(0)),
                                            3);
  EngineRegistry registry;
  LoadScalingSession(&registry, "s", db);
  // Warm the engine (first report is the one build this benchmark ever pays).
  benchmark::DoNotOptimize(registry.Report("s", ReportOptions{}));
  for (auto _ : state) {
    auto report = registry.Report("s", ReportOptions{});
    benchmark::DoNotOptimize(report);
  }
  const size_t endo = registry.FindDatabase("s")->endogenous_count();
  state.SetLabel("endo=" + std::to_string(endo));
}
BENCHMARK(BM_ServerWarmReport)->Arg(8)->Arg(20);

void BM_ServerColdReport(benchmark::State& state) {
  const Database db = BuildStudentScalingDb(static_cast<int>(state.range(0)),
                                            3);
  RegistryOptions options;
  options.engine_byte_budget = 1;  // always over budget: rebuild per request
  EngineRegistry registry(options);
  LoadScalingSession(&registry, "s", db);
  for (auto _ : state) {
    auto report = registry.Report("s", ReportOptions{});
    benchmark::DoNotOptimize(report);
  }
  const size_t endo = registry.FindDatabase("s")->endogenous_count();
  state.SetLabel("endo=" + std::to_string(endo));
}
BENCHMARK(BM_ServerColdReport)->Arg(8)->Arg(20);

void BM_ServerDeltaReport(benchmark::State& state) {
  const Database db = BuildStudentScalingDb(static_cast<int>(state.range(0)),
                                            3);
  EngineRegistry registry;
  LoadScalingSession(&registry, "s", db);
  benchmark::DoNotOptimize(registry.Report("s", ReportOptions{}));
  // The mutated fact: the last endogenous registration, deleted and
  // re-inserted each iteration so the database is unchanged between rounds.
  const Database* live = registry.FindDatabase("s");
  const FactId target = live->endogenous_facts().back();
  MutationSpec insert;
  insert.op = MutationSpec::Op::kInsert;
  insert.fact.relation = live->schema().name(live->relation_of(target));
  insert.fact.tuple = live->tuple_of(target);
  insert.fact.endogenous = true;
  MutationSpec remove;
  remove.op = MutationSpec::Op::kDelete;
  remove.fact = insert.fact;
  for (auto _ : state) {
    benchmark::DoNotOptimize(registry.ApplyMutation("s", remove));
    benchmark::DoNotOptimize(registry.ApplyMutation("s", insert));
    auto report = registry.Report("s", ReportOptions{});
    benchmark::DoNotOptimize(report);
  }
  const size_t endo = registry.FindDatabase("s")->endogenous_count();
  state.SetLabel("endo=" + std::to_string(endo));
}
BENCHMARK(BM_ServerDeltaReport)->Arg(8)->Arg(20);

}  // namespace

BENCHMARK_MAIN();
