// shapcq_cli — command-line front end for quick experiments.
//
//   shapcq_cli --db "Stud(a) TA(a)* Reg(a,os)*" \
//              --query "q() :- Stud(x), not TA(x), Reg(x,y)" \
//              [--exo Rel1,Rel2] [--threads N] [--top-k K] [--brute-force]
//              [--approx EPS,DELTA] [--seed S] [--max-samples M]
//              [--force-approx] [--classify-only] [--mutate FILE]
//
// Facts use the Database::ToString format ('*' marks endogenous). Prints the
// dichotomy classification and, when an engine applies, the full attribution
// report (every endogenous fact's exact Shapley value, ranked). With
// --approx the sampling tier (additive FPRAS) serves non-hierarchical
// queries exactly as the server's "REPORT ... approx=EPS,DELTA" does: the
// report flags assemble one ReportRequest, validated by the same parser as
// the server's REPORT command (service/report_request.h).
//
// --mutate FILE replays a fact delta file against the incremental engine:
// one mutation per line, '+' inserts a fact literal ('*' = endogenous), '-'
// deletes one by literal; blank lines and '#' comments are skipped. The
// engine is built once, every delta patches a single root-to-leaf path, and
// a fresh attribution report is printed after the replay.

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <string>

#include "core/plan.h"
#include "core/report.h"
#include "core/shapley_engine.h"
#include "db/textio.h"
#include "query/analysis.h"
#include "query/classify.h"
#include "query/parser.h"
#include "service/report_request.h"

namespace {

void PrintUsage() {
  std::fprintf(
      stderr,
      "usage: shapcq_cli --db FACTS --query RULE [--exo R1,R2,...]\n"
      "                  [--threads N] [--top-k K] [--brute-force]\n"
      "                  [--approx EPS,DELTA] [--seed S] [--max-samples M]\n"
      "                  [--force-approx] [--engine arena|tree]\n"
      "                  [--deadline-ms N] [--on-deadline error|approx]\n"
      "                  [--classify-only] [--explain] [--mutate FILE]\n"
      "  FACTS: whitespace-separated facts, '*' suffix = endogenous,\n"
      "         e.g. \"Stud(a) TA(a)* Reg(a,os)*\"\n"
      "  RULE:  e.g. \"q() :- Stud(x), not TA(x), Reg(x,y)\"\n"
      "  FILE:  delta replay, one mutation per line: '+ Reg(eve,os)*'\n"
      "         inserts, '- Reg(a,os)' deletes; '#' starts a comment.\n"
      "         Requires a hierarchical query (the incremental engine).\n"
      "\n"
      "Report request (one grammar with the server's REPORT command):\n"
      "  top_k=K          keep only the K highest-ranked rows (0 = all)\n"
      "  threads=N        worker threads (1 = serial, 0 = all hardware\n"
      "                   threads); values are identical at any count\n"
      "  approx=EPS,DELTA sampling tier: additive error EPS at joint\n"
      "                   failure probability DELTA, both in (0,1);\n"
      "                   approx=EPS defaults DELTA to 0.05. Serves any\n"
      "                   evaluable query, including non-hierarchical\n"
      "                   ones that have no exact polynomial engine.\n"
      "  seed=S           RNG seed of the sampling tier (default 0)\n"
      "  max_samples=M    per-orbit sample cap (0 = the full Hoeffding\n"
      "                   count; capping widens the intervals)\n"
      "  force_approx=0|1 sample even when an exact engine applies\n"
      "  engine=arena|tree numeric core for the exact engine (arena = the\n"
      "                   flat SoA default, tree = the pointer-linked\n"
      "                   oracle); values are bit-identical either way\n"
      "  deadline_ms=N    wall-clock budget for the report (0 = none);\n"
      "                   expiry prints '[E_DEADLINE] ...' and exits 1,\n"
      "                   unless on_deadline=approx\n"
      "  on_deadline=error|approx\n"
      "                   policy when an exact report's deadline expires:\n"
      "                   'error' (default) fails; 'approx' degrades to a\n"
      "                   work-bounded sampled report ('approx:'\n"
      "                   provenance line)\n"
      "The flags --top-k/--threads/--approx/--seed/--max-samples/\n"
      "--force-approx/--engine/--deadline-ms/--on-deadline assemble\n"
      "exactly these key=value pairs.\n");
}

// Replays a delta file against the incremental engine and prints the
// resulting attribution report. Returns the process exit code.
int RunMutateReplay(const shapcq::CQ& q, shapcq::Database& db,
                    const std::string& path,
                    const shapcq::ReportOptions& options) {
  using namespace shapcq;
  auto built = ShapleyEngine::Build(q, db, options.engine_core);
  if (!built.ok()) {
    std::fprintf(stderr, "--mutate needs the incremental engine: %s\n",
                 built.error().c_str());
    return 1;
  }
  ShapleyEngine engine = std::move(built).value();
  std::ifstream file(path);
  if (!file) {
    std::fprintf(stderr, "cannot open delta file %s\n", path.c_str());
    return 1;
  }
  std::string line;
  size_t line_no = 0, applied = 0;
  while (std::getline(file, line)) {
    ++line_no;
    size_t start = line.find_first_not_of(" \t\r");
    if (start == std::string::npos || line[start] == '#') continue;
    auto parsed = ParseMutationLine(line);
    if (!parsed.ok()) {
      std::fprintf(stderr, "%s:%zu: %s\n", path.c_str(), line_no,
                   parsed.error().c_str());
      return 1;
    }
    const MutationSpec mutation = std::move(parsed).value();
    const FactSpec& fact = mutation.fact;
    if (mutation.op == MutationSpec::Op::kInsert) {
      auto inserted =
          engine.InsertFact(db, fact.relation, fact.tuple, fact.endogenous);
      if (!inserted.ok()) {
        std::fprintf(stderr, "%s:%zu: %s\n", path.c_str(), line_no,
                     inserted.error().c_str());
        return 1;
      }
    } else {
      const FactId victim = db.FindFact(fact.relation, fact.tuple);
      if (victim == kNoFact) {
        std::fprintf(stderr, "%s:%zu: no such fact to delete\n", path.c_str(),
                     line_no);
        return 1;
      }
      auto deleted = engine.DeleteFact(db, victim);
      if (!deleted.ok()) {
        std::fprintf(stderr, "%s:%zu: %s\n", path.c_str(), line_no,
                     deleted.error().c_str());
        return 1;
      }
    }
    ++applied;
  }
  std::printf("applied %zu deltas; database now: %s\n", applied,
              db.ToString().c_str());
  const AttributionReport report =
      BuildAttributionReportFromEngine(engine, db, options);
  std::printf("%s", RenderReport(report, db).c_str());
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace shapcq;
  std::string db_text, query_text, exo_text, mutate_path;
  bool brute_force = false, classify_only = false, explain = false;
  // The report flags assemble one key=value ReportRequest string, parsed
  // (and validated) by the same ParseReportRequest the server's REPORT
  // command uses — report parameters have exactly one grammar.
  std::string request_text;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next = [&]() -> const char* {
      if (i + 1 >= argc) {
        PrintUsage();
        std::exit(2);
      }
      return argv[++i];
    };
    if (arg == "--db") {
      db_text = next();
    } else if (arg == "--query") {
      query_text = next();
    } else if (arg == "--exo") {
      exo_text = next();
    } else if (arg == "--mutate") {
      mutate_path = next();
    } else if (arg == "--threads") {
      request_text += std::string(" threads=") + next();
    } else if (arg == "--top-k") {
      request_text += std::string(" top_k=") + next();
    } else if (arg == "--approx") {
      request_text += std::string(" approx=") + next();
    } else if (arg == "--seed") {
      request_text += std::string(" seed=") + next();
    } else if (arg == "--max-samples") {
      request_text += std::string(" max_samples=") + next();
    } else if (arg == "--force-approx") {
      request_text += " force_approx=1";
    } else if (arg == "--engine") {
      request_text += std::string(" engine=") + next();
    } else if (arg == "--deadline-ms") {
      request_text += std::string(" deadline_ms=") + next();
    } else if (arg == "--on-deadline") {
      request_text += std::string(" on_deadline=") + next();
    } else if (arg == "--brute-force") {
      brute_force = true;
    } else if (arg == "--classify-only") {
      classify_only = true;
    } else if (arg == "--explain") {
      explain = true;
    } else if (arg == "--help" || arg == "-h") {
      PrintUsage();
      return 0;
    } else {
      std::fprintf(stderr, "unknown flag: %s\n", arg.c_str());
      PrintUsage();
      return 2;
    }
  }
  if (db_text.empty() || query_text.empty()) {
    PrintUsage();
    return 2;
  }
  auto request = ParseReportRequest(request_text, /*default_threads=*/1);
  if (!request.ok()) {
    std::fprintf(stderr, "bad report request: %s\n", request.error().c_str());
    return 2;
  }

  auto db = ParseDatabase(db_text);
  if (!db.ok()) {
    std::fprintf(stderr, "bad --db: %s\n", db.error().c_str());
    return 1;
  }
  auto query = ParseCQ(query_text);
  if (!query.ok()) {
    std::fprintf(stderr, "bad --query: %s\n", query.error().c_str());
    return 1;
  }
  ExoRelations exo;
  std::string rest = exo_text;
  while (!rest.empty()) {
    const size_t comma = rest.find(',');
    exo.insert(rest.substr(0, comma));
    rest = comma == std::string::npos ? "" : rest.substr(comma + 1);
  }

  auto verdict = exo.empty() ? ClassifyExactShapley(query.value())
                             : ClassifyExactShapley(query.value(), exo);
  if (verdict.ok()) {
    std::printf("classification: %s\n", verdict.value().reason.c_str());
  } else {
    std::printf("classification: %s\n", verdict.error().c_str());
  }
  if (explain) {
    auto plan = CompileSafePlan(query.value());
    if (plan.ok()) {
      std::printf("safe plan:\n%s", ExplainPlan(*plan.value()).c_str());
    } else {
      std::printf("safe plan: %s\n", plan.error().c_str());
    }
  }
  if (classify_only) return 0;

  ReportOptions options = request.value().ToReportOptions();
  options.exo = exo;
  options.allow_brute_force = brute_force;
  if (!mutate_path.empty()) {
    Database mutable_db = std::move(db).value();
    return RunMutateReplay(query.value(), mutable_db, mutate_path, options);
  }
  auto report = BuildAttributionReport(query.value(), db.value(), options);
  if (!report.ok()) {
    std::fprintf(stderr,
                 "%s\n(hint: pass --approx EPS,DELTA for a sampled report, "
                 "or --brute-force for small |Dn|)\n",
                 report.error().c_str());
    return 1;
  }
  std::printf("%s", RenderReport(report.value(), db.value()).c_str());
  return 0;
}
