// CntSat (Lemma 3.2): the polynomial counting algorithm against brute-force
// subset enumeration, across hand-picked cases and randomized sweeps.

#include "core/count_sat.h"

#include <gtest/gtest.h>

#include <string>
#include <tuple>

#include "core/brute_force.h"
#include "datasets/synthetic.h"
#include "datasets/university.h"
#include "query/parser.h"
#include "util/random.h"

namespace shapcq {
namespace {

TEST(CountSatTest, RunningExampleMatchesBruteForce) {
  UniversityDb u = BuildUniversityDb();
  const CQ q1 = UniversityQ1();
  auto counted = CountSat(q1, u.db);
  ASSERT_TRUE(counted.ok()) << counted.error();
  EXPECT_EQ(counted.value(), CountSatBruteForce(q1, u.db))
      << counted.value().ToString();
}

TEST(CountSatTest, EmptyDatabase) {
  Database db;
  auto counted = CountSat(MustParseCQ("q() :- R(x)"), db);
  ASSERT_TRUE(counted.ok());
  EXPECT_EQ(counted.value().universe_size(), 0u);
  EXPECT_EQ(counted.value().at(0).ToInt64(), 0);
}

TEST(CountSatTest, NegationOnlyBlockedByExo) {
  Database db;
  db.AddExo("R", {V("cs1")});
  db.AddExo("S", {V("cs1")});
  db.AddEndo("R", {V("cs2")});
  // R(cs1) is blocked by exogenous S(cs1); R(cs2) is free of S.
  auto counted = CountSat(MustParseCQ("q() :- R(x), not S(x)"), db);
  ASSERT_TRUE(counted.ok());
  // Universe = {R(cs2)}: satisfied iff R(cs2) picked.
  EXPECT_EQ(counted.value().at(0).ToInt64(), 0);
  EXPECT_EQ(counted.value().at(1).ToInt64(), 1);
}

TEST(CountSatTest, EndogenousNegativeFactCounts) {
  // Lemma 3.2's base case with an endogenous negative fact: the subset must
  // avoid it, but it still belongs to the universe.
  Database db;
  db.AddExo("R", {V("cn1")});
  db.AddEndo("S", {V("cn1")});
  db.AddEndo("Noise", {V("cn2")});
  CQ q = MustParseCQ("q() :- R(x), not S(x)");
  auto counted = CountSat(q, db);
  ASSERT_TRUE(counted.ok());
  EXPECT_EQ(counted.value(), CountSatBruteForce(q, db));
  // k=0: {} satisfies (S(cn1) absent). k=1: only {Noise}. k=2: none.
  EXPECT_EQ(counted.value().at(0).ToInt64(), 1);
  EXPECT_EQ(counted.value().at(1).ToInt64(), 1);
  EXPECT_EQ(counted.value().at(2).ToInt64(), 0);
}

TEST(CountSatTest, RequiresHierarchical) {
  UniversityDb u = BuildUniversityDb();
  EXPECT_FALSE(CountSat(UniversityQ2(), u.db).ok());
}

TEST(CountSatTest, RequiresSelfJoinFree) {
  UniversityDb u = BuildUniversityDb();
  EXPECT_FALSE(CountSat(MustParseCQ("q() :- TA(x), TA2(x), TA(y)"), u.db).ok());
}

TEST(CountSatTest, RequiresSafety) {
  UniversityDb u = BuildUniversityDb();
  EXPECT_FALSE(CountSat(MustParseCQ("q() :- TA(x), not Reg(x,y)"), u.db).ok());
}

TEST(CountSatTest, GroundQuery) {
  Database db;
  db.AddEndo("R", {V("g1")});
  db.AddEndo("R", {V("g2")});
  CQ q = MustParseCQ("q() :- R('g1')");
  auto counted = CountSat(q, db);
  ASSERT_TRUE(counted.ok());
  EXPECT_EQ(counted.value(), CountSatBruteForce(q, db));
  // Must pick R(g1); R(g2) free: c[1] = 1, c[2] = 1.
  EXPECT_EQ(counted.value().at(1).ToInt64(), 1);
  EXPECT_EQ(counted.value().at(2).ToInt64(), 1);
}

TEST(CountSatTest, RepeatedVariablePattern) {
  Database db;
  db.AddEndo("E", {V("rp1"), V("rp1")});
  db.AddEndo("E", {V("rp1"), V("rp2")});  // never matches E(x,x): free fact
  CQ q = MustParseCQ("q() :- E(x,x)");
  auto counted = CountSat(q, db);
  ASSERT_TRUE(counted.ok());
  EXPECT_EQ(counted.value(), CountSatBruteForce(q, db));
}

// ---------------------------------------------------------------------------
// Property sweep: CountSat == brute force on random databases, over a grid of
// hierarchical CQ¬ shapes × random seeds.
// ---------------------------------------------------------------------------

using CountSatSweepParam = std::tuple<const char*, int>;  // (query, seed)

class CountSatSweep : public ::testing::TestWithParam<CountSatSweepParam> {};

TEST_P(CountSatSweep, MatchesBruteForce) {
  const CQ q = MustParseCQ(std::get<0>(GetParam()));
  Rng rng(static_cast<uint64_t>(std::get<1>(GetParam())) * 7919 + 13);
  SyntheticOptions options;
  options.domain_size = 3;
  options.facts_per_relation = 4;
  const Database db = RandomDatabaseForQuery(q, {}, options, &rng);
  auto counted = CountSat(q, db);
  ASSERT_TRUE(counted.ok()) << counted.error();
  EXPECT_EQ(counted.value(), CountSatBruteForce(q, db))
      << "query " << q.ToString() << "\ndb " << db.ToString() << "\ngot "
      << counted.value().ToString();
}

INSTANTIATE_TEST_SUITE_P(
    HierarchicalShapes, CountSatSweep,
    ::testing::Combine(
        ::testing::Values(
            "q() :- R(x)",                             // single atom
            "q() :- R(x), S(x)",                       // shared root
            "q() :- R(x), not S(x)",                   // negation
            "q() :- Stud(x), not TA(x), Reg(x,y)",     // the paper's q1
            "q() :- R(x,y), S(x,y), T(x)",             // nested levels
            "q() :- R(x), S(y)",                       // disconnected
            "q() :- R(x), not S(x), T(y), not U(y)",   // two neg components
            "q() :- R(x,'d0')",                        // constant
            "q() :- E(x,x), not F(x)",                 // repeated variable
            "q() :- R(x,y), not S(x)",                 // negated sub-level
            "q() :- A(x), B(x,y), C(x,y,z), not D(x,y,z)",  // deep chain
            "q() :- A(x), not B(x,y), C(x,y)",         // negated mid-level
            "q() :- A(x,x,y), B(y,x)",                 // triple with repeat
            "q() :- A(x), B(x,'d1'), not C(x,'d0')",   // constants + negation
            "q() :- A(x), not B(x), C(y), not D(y), E(z)"),  // 3 components
        ::testing::Range(0, 6)));

}  // namespace
}  // namespace shapcq
