// Attribution reports: engine selection, ranking, rendering.

#include "core/report.h"

#include <gtest/gtest.h>

#include "datasets/citations.h"
#include "datasets/university.h"

namespace shapcq {
namespace {

TEST(ReportTest, HierarchicalUsesCntSat) {
  UniversityDb u = BuildUniversityDb();
  auto report = BuildAttributionReport(UniversityQ1(), u.db, {});
  ASSERT_TRUE(report.ok()) << report.error();
  EXPECT_EQ(report.value().engine, "CntSat");
  EXPECT_EQ(report.value().total, Rational(1));
  ASSERT_EQ(report.value().rows.size(), 8u);
  // Sorted descending: the Caroline registrations (13/42) first, TA(Adam)
  // (-3/28) last.
  EXPECT_EQ(report.value().rows.front().value, Rational::Of(13, 42));
  EXPECT_EQ(report.value().rows.back().value, Rational::Of(-3, 28));
}

TEST(ReportTest, ExoShapSelectedWhenNeeded) {
  Database db = BuildSmallCitationsDb();
  ReportOptions options;
  options.exo = CitationsExoRelations();
  auto report = BuildAttributionReport(CitationsQuery(), db, options);
  ASSERT_TRUE(report.ok()) << report.error();
  EXPECT_EQ(report.value().engine, "ExoShap");
}

TEST(ReportTest, RefusesHardQueryByDefault) {
  UniversityDb u = BuildUniversityDb();
  auto report = BuildAttributionReport(UniversityQ2(), u.db, {});
  EXPECT_FALSE(report.ok());
}

TEST(ReportTest, BruteForceFallbackWhenAllowed) {
  UniversityDb u = BuildUniversityDb();
  ReportOptions options;
  options.allow_brute_force = true;
  auto report = BuildAttributionReport(UniversityQ2(), u.db, options);
  ASSERT_TRUE(report.ok()) << report.error();
  EXPECT_EQ(report.value().engine, "brute-force");
}

TEST(ReportTest, BruteForceRespectsLimit) {
  UniversityDb u = BuildUniversityDb();
  ReportOptions options;
  options.allow_brute_force = true;
  options.brute_force_limit = 4;  // |Dn| = 8 exceeds it
  EXPECT_FALSE(BuildAttributionReport(UniversityQ2(), u.db, options).ok());
}

TEST(ReportTest, RenderContainsFactsAndEngine) {
  UniversityDb u = BuildUniversityDb();
  auto report = BuildAttributionReport(UniversityQ1(), u.db, {});
  const std::string text = RenderReport(report.value(), u.db);
  EXPECT_NE(text.find("engine: CntSat"), std::string::npos);
  EXPECT_NE(text.find("Reg(Caroline,DB)*"), std::string::npos);
  EXPECT_NE(text.find("13/42"), std::string::npos);
  EXPECT_NE(text.find("total"), std::string::npos);
}

}  // namespace
}  // namespace shapcq
