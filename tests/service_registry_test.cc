// EngineRegistry semantics: lazy engine builds, LRU eviction under byte and
// count budgets, rebuild-on-readmission equivalence, and the memory
// accounting hook feeding the byte budget.

#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "core/report.h"
#include "core/shapley_engine.h"
#include "datasets/university.h"
#include "db/textio.h"
#include "query/parser.h"
#include "service/engine_registry.h"

namespace shapcq {
namespace {

MutationSpec Insert(const std::string& literal) {
  auto parsed = ParseMutationLine("+ " + literal);
  SHAPCQ_CHECK_MSG(parsed.ok(), parsed.error().c_str());
  return std::move(parsed).value();
}

MutationSpec Delete(const std::string& literal) {
  auto parsed = ParseMutationLine("- " + literal);
  SHAPCQ_CHECK_MSG(parsed.ok(), parsed.error().c_str());
  return std::move(parsed).value();
}

// Loads every fact of `db` into the session as insert mutations.
void LoadDatabase(EngineRegistry* registry, const std::string& id,
                  const Database& db) {
  for (size_t slot = 0; slot < db.fact_slot_count(); ++slot) {
    const FactId fact = static_cast<FactId>(slot);
    if (db.is_removed(fact)) continue;
    MutationSpec mutation;
    mutation.op = MutationSpec::Op::kInsert;
    mutation.fact.relation = db.schema().name(db.relation_of(fact));
    mutation.fact.tuple = db.tuple_of(fact);
    mutation.fact.endogenous = db.is_endogenous(fact);
    auto applied = registry->ApplyMutation(id, mutation);
    ASSERT_TRUE(applied.ok()) << applied.error();
  }
}

TEST(EngineRegistryTest, LazyBuildAndHitMissCounters) {
  EngineRegistry registry;
  ASSERT_TRUE(registry.Open("s1", MustParseCQ("q() :- R(x)")).ok());
  ASSERT_TRUE(registry.ApplyMutation("s1", Insert("R(a)*")).ok());
  EXPECT_FALSE(registry.Stats("s1").value().engine_resident);

  ASSERT_TRUE(registry.Report("s1", ReportOptions{}).ok());
  EXPECT_TRUE(registry.Stats("s1").value().engine_resident);
  EXPECT_EQ(registry.stats().report_misses, 1u);
  EXPECT_EQ(registry.stats().report_hits, 0u);

  ASSERT_TRUE(registry.Report("s1", ReportOptions{}).ok());
  EXPECT_EQ(registry.stats().report_misses, 1u);
  EXPECT_EQ(registry.stats().report_hits, 1u);
  EXPECT_EQ(registry.stats().engine_builds, 1u);
}

TEST(EngineRegistryTest, ReportMatchesFreshEngineExactly) {
  UniversityDb u = BuildUniversityDb();
  const CQ q = UniversityQ1();
  EngineRegistry registry;
  ASSERT_TRUE(registry.Open("uni", q).ok());
  LoadDatabase(&registry, "uni", u.db);

  auto report = registry.Report("uni", ReportOptions{});
  ASSERT_TRUE(report.ok()) << report.error();
  // The registry's database was built by replaying inserts, so its rendering
  // must match a report over the original database verbatim.
  auto fresh = BuildAttributionReport(q, u.db, ReportOptions{});
  ASSERT_TRUE(fresh.ok()) << fresh.error();
  ASSERT_EQ(report.value().rows.size(), fresh.value().rows.size());
  for (size_t i = 0; i < fresh.value().rows.size(); ++i) {
    EXPECT_EQ(report.value().rows[i].value, fresh.value().rows[i].value) << i;
  }
  EXPECT_EQ(report.value().total, fresh.value().total);
  EXPECT_EQ(RenderReport(report.value(), *registry.FindDatabase("uni"))
                .substr(std::string("engine: CntSat (incremental)\n").size()),
            RenderReport(fresh.value(), u.db)
                .substr(std::string("engine: CntSat\n").size()));
}

TEST(EngineRegistryTest, ApproxMemoryBytesIsPositiveAndGrows) {
  UniversityDb u = BuildUniversityDb();
  const CQ q = UniversityQ1();
  auto small = ShapleyEngine::Build(q, u.db);
  ASSERT_TRUE(small.ok());
  const size_t small_bytes = small.value().ApproxMemoryBytes();
  EXPECT_GT(small_bytes, 0u);

  // A bigger database must yield a bigger index estimate.
  Database big = MustParseDatabase(u.db.ToString());
  for (int i = 0; i < 40; ++i) {
    big.AddEndo("Reg", {V("extra" + std::to_string(i)), V("OS")});
    big.AddExo("Stud", {V("extra" + std::to_string(i))});
  }
  auto grown = ShapleyEngine::Build(q, big);
  ASSERT_TRUE(grown.ok());
  EXPECT_GT(grown.value().ApproxMemoryBytes(), small_bytes);
}

TEST(EngineRegistryTest, ByteBudgetEvictsLeastRecentlyUsed) {
  UniversityDb u = BuildUniversityDb();
  const CQ q = UniversityQ1();
  // Budget sized to hold ~one university engine, never two. The probe is
  // queried first so its estimate includes the lazily built context tables
  // a served engine carries.
  auto built = ShapleyEngine::Build(q, u.db);
  ASSERT_TRUE(built.ok());
  ShapleyEngine probe = std::move(built).value();
  probe.AllValues();
  RegistryOptions options;
  options.engine_byte_budget = probe.ApproxMemoryBytes() * 3 / 2;

  EngineRegistry registry(options);
  ASSERT_TRUE(registry.Open("a", q).ok());
  ASSERT_TRUE(registry.Open("b", q).ok());
  LoadDatabase(&registry, "a", u.db);
  LoadDatabase(&registry, "b", u.db);

  ASSERT_TRUE(registry.Report("a", ReportOptions{}).ok());
  EXPECT_TRUE(registry.Stats("a").value().engine_resident);
  ASSERT_TRUE(registry.Report("b", ReportOptions{}).ok());
  // b's build pushed the registry over budget: a (the LRU engine) went.
  EXPECT_FALSE(registry.Stats("a").value().engine_resident);
  EXPECT_TRUE(registry.Stats("b").value().engine_resident);
  EXPECT_EQ(registry.stats().evictions, 1u);
  EXPECT_LE(registry.stats().resident_bytes, options.engine_byte_budget);

  // Readmitting a rebuilds (a miss) and evicts b in turn.
  ASSERT_TRUE(registry.Report("a", ReportOptions{}).ok());
  EXPECT_TRUE(registry.Stats("a").value().engine_resident);
  EXPECT_FALSE(registry.Stats("b").value().engine_resident);
  EXPECT_EQ(registry.stats().report_misses, 3u);
  EXPECT_EQ(registry.stats().evictions, 2u);
  EXPECT_EQ(registry.Stats("a").value().engine_builds, 2u);
}

TEST(EngineRegistryTest, MaxResidentCapEvictsDeterministically) {
  EngineRegistry registry([] {
    RegistryOptions options;
    options.max_resident_engines = 2;
    return options;
  }());
  const CQ q = MustParseCQ("q() :- R(x)");
  for (const char* id : {"a", "b", "c"}) {
    ASSERT_TRUE(registry.Open(id, q).ok());
    ASSERT_TRUE(
        registry.ApplyMutation(id, Insert(std::string("R(") + id + ")*"))
            .ok());
    ASSERT_TRUE(registry.Report(id, ReportOptions{}).ok());
  }
  // c's build evicted a (LRU); b stayed.
  EXPECT_FALSE(registry.Stats("a").value().engine_resident);
  EXPECT_TRUE(registry.Stats("b").value().engine_resident);
  EXPECT_TRUE(registry.Stats("c").value().engine_resident);
  EXPECT_EQ(registry.stats().resident_engines, 2u);
  EXPECT_EQ(registry.stats().evictions, 1u);

  // Touching b (a report hit) protects it; reporting a next evicts c.
  ASSERT_TRUE(registry.Report("c", ReportOptions{}).ok());
  ASSERT_TRUE(registry.Report("b", ReportOptions{}).ok());
  ASSERT_TRUE(registry.Report("a", ReportOptions{}).ok());
  EXPECT_TRUE(registry.Stats("a").value().engine_resident);
  EXPECT_TRUE(registry.Stats("b").value().engine_resident);
  EXPECT_FALSE(registry.Stats("c").value().engine_resident);
}

TEST(EngineRegistryTest, EvictedSessionAbsorbsDeltasAndRebuildsIdentically) {
  UniversityDb u = BuildUniversityDb();
  const CQ q = UniversityQ1();

  // warm: never evicted, every delta patches the engine incrementally.
  // cold: an always-over-budget registry, engine evicted after each request.
  EngineRegistry warm;
  RegistryOptions tiny;
  tiny.engine_byte_budget = 1;
  EngineRegistry cold(tiny);
  for (EngineRegistry* registry : {&warm, &cold}) {
    ASSERT_TRUE(registry->Open("s", q).ok());
    LoadDatabase(registry, "s", u.db);
    ASSERT_TRUE(registry->Report("s", ReportOptions{}).ok());
  }
  EXPECT_TRUE(warm.Stats("s").value().engine_resident);
  EXPECT_FALSE(cold.Stats("s").value().engine_resident);
  EXPECT_EQ(cold.stats().evictions, 1u);

  const std::vector<MutationSpec> mutations = {
      Insert("Reg(Eve,OS)*"), Insert("Stud(Eve)"),   Delete("TA(Adam)"),
      Insert("TA(Eve)*"),     Delete("Reg(Ben,OS)"), Insert("Reg(Ben,AI)*"),
  };
  for (const MutationSpec& mutation : mutations) {
    ASSERT_TRUE(warm.ApplyMutation("s", mutation).ok());
    ASSERT_TRUE(cold.ApplyMutation("s", mutation).ok());
    auto warm_report = warm.Report("s", ReportOptions{});
    auto cold_report = cold.Report("s", ReportOptions{});
    ASSERT_TRUE(warm_report.ok()) << warm_report.error();
    ASSERT_TRUE(cold_report.ok()) << cold_report.error();
    // Same ranked table, bit-identical, whether served warm or rebuilt.
    EXPECT_EQ(RenderReport(warm_report.value(), *warm.FindDatabase("s")),
              RenderReport(cold_report.value(), *cold.FindDatabase("s")));
  }
  // The warm engine really was incremental (one build), the cold one never
  // survived between requests (one build per report).
  EXPECT_EQ(warm.Stats("s").value().engine_builds, 1u);
  EXPECT_EQ(cold.Stats("s").value().engine_builds,
            1u + mutations.size());
}

TEST(EngineRegistryTest, CloseFreesResidencyWithoutCountingEviction) {
  EngineRegistry registry;
  const CQ q = MustParseCQ("q() :- R(x)");
  ASSERT_TRUE(registry.Open("s", q).ok());
  ASSERT_TRUE(registry.ApplyMutation("s", Insert("R(a)*")).ok());
  ASSERT_TRUE(registry.Report("s", ReportOptions{}).ok());
  EXPECT_EQ(registry.stats().resident_engines, 1u);
  ASSERT_TRUE(registry.Close("s").ok());
  EXPECT_EQ(registry.stats().resident_engines, 0u);
  EXPECT_EQ(registry.stats().resident_bytes, 0u);
  EXPECT_EQ(registry.stats().evictions, 0u);
  EXPECT_EQ(registry.stats().open_sessions, 0u);
  EXPECT_FALSE(registry.Has("s"));
  EXPECT_EQ(registry.FindDatabase("s"), nullptr);
  // The id is reusable after close.
  EXPECT_TRUE(registry.Open("s", q).ok());
}

TEST(EngineRegistryTest, SessionIdsKeepOpenOrder) {
  EngineRegistry registry;
  const CQ q = MustParseCQ("q() :- R(x)");
  ASSERT_TRUE(registry.Open("z", q).ok());
  ASSERT_TRUE(registry.Open("a", q).ok());
  ASSERT_TRUE(registry.Open("m", q).ok());
  EXPECT_EQ(registry.SessionIds(),
            (std::vector<std::string>{"z", "a", "m"}));
  ASSERT_TRUE(registry.Close("a").ok());
  EXPECT_EQ(registry.SessionIds(), (std::vector<std::string>{"z", "m"}));
}

}  // namespace
}  // namespace shapcq
