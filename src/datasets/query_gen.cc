#include "datasets/query_gen.h"

#include <string>
#include <vector>

#include "util/check.h"

namespace shapcq {

namespace {

// Names are generator-local; relations are numbered to keep the query
// self-join-free.
std::string RelationName(int index) { return "G" + std::to_string(index); }

Term RandomTerm(const QueryGenOptions& options, CQ* q,
                const std::vector<VarId>& path, size_t position, Rng* rng) {
  if (rng->Bernoulli(options.constant_rate)) {
    return Term::MakeConst(
        V("k" + std::to_string(rng->UniformInt(3))));
  }
  // Default to the path variable at this position; occasionally repeat an
  // earlier path variable to exercise repeated-variable patterns.
  (void)q;
  if (position > 0 && rng->Bernoulli(0.15)) {
    return Term::MakeVar(path[rng->UniformInt(position)]);
  }
  return Term::MakeVar(path[position]);
}

// Appends an atom whose variables are (a superset-respecting use of) the
// path; terms may repeat variables or drop to constants, but every path
// variable appears at least once when `cover` is set.
void AddPathAtom(const QueryGenOptions& options, CQ* q, int* relation_counter,
                 const std::vector<VarId>& path, bool negated, bool cover,
                 Rng* rng) {
  Atom atom;
  atom.relation = RelationName((*relation_counter)++);
  atom.negated = negated;
  // The atom's variable set must be a prefix of the path — that is what
  // keeps the query hierarchical (prefixes of one path nest; different
  // branches are disjoint). Terms: one per prefix variable in order, plus
  // optional extras (repeats of prefix variables or constants).
  const size_t prefix =
      cover ? path.size() : 1 + rng->UniformInt(path.size());
  for (size_t i = 0; i < prefix; ++i) {
    atom.terms.push_back(Term::MakeVar(path[i]));
  }
  if (rng->Bernoulli(0.3)) {
    atom.terms.push_back(RandomTerm(options, q, path, prefix - 1, rng));
  }
  q->AddAtom(std::move(atom));
}

void GrowTree(const QueryGenOptions& options, CQ* q, int* relation_counter,
              std::vector<VarId>* path, int depth, Rng* rng) {
  path->push_back(q->GetOrAddVar("v" + std::to_string(q->var_count())));
  // Every node gets one positive covering atom (safety + connectivity), and
  // possibly an extra atom of random polarity over a path prefix.
  AddPathAtom(options, q, relation_counter, *path, /*negated=*/false,
              /*cover=*/true, rng);
  if (rng->Bernoulli(0.5)) {
    AddPathAtom(options, q, relation_counter, *path,
                rng->Bernoulli(options.negation_rate), /*cover=*/false, rng);
  }
  if (depth < options.max_depth) {
    const uint64_t children = rng->UniformInt(
        static_cast<uint64_t>(options.max_branch) + 1);
    for (uint64_t c = 0; c < children; ++c) {
      GrowTree(options, q, relation_counter, path, depth + 1, rng);
    }
  }
  path->pop_back();
}

}  // namespace

CQ RandomHierarchicalCq(const QueryGenOptions& options, Rng* rng) {
  CQ q("qrand");
  int relation_counter = 0;
  std::vector<VarId> path;
  GrowTree(options, &q, &relation_counter, &path, 1, rng);
  return q;
}

CQ RandomSafeCq(const QueryGenOptions& options, Rng* rng) {
  CQ q("qrand");
  const int num_vars = 2 + static_cast<int>(rng->UniformInt(3));
  std::vector<VarId> vars;
  for (int i = 0; i < num_vars; ++i) {
    vars.push_back(q.GetOrAddVar("v" + std::to_string(i)));
  }
  int relation_counter = 0;
  const int num_atoms =
      2 + static_cast<int>(rng->UniformInt(
              static_cast<uint64_t>(options.max_atoms - 1)));
  for (int a = 0; a < num_atoms; ++a) {
    Atom atom;
    atom.relation = RelationName(relation_counter++);
    atom.negated = rng->Bernoulli(options.negation_rate);
    const size_t arity = 1 + rng->UniformInt(2);
    for (size_t i = 0; i < arity; ++i) {
      if (rng->Bernoulli(options.constant_rate)) {
        atom.terms.push_back(
            Term::MakeConst(V("k" + std::to_string(rng->UniformInt(3)))));
      } else {
        atom.terms.push_back(
            Term::MakeVar(vars[rng->UniformInt(vars.size())]));
      }
    }
    q.AddAtom(std::move(atom));
  }
  // Restore safety: one wide positive atom covering every used variable.
  std::vector<VarId> used = q.UsedVars();
  if (!used.empty()) {
    Atom guard;
    guard.relation = RelationName(relation_counter++);
    guard.negated = false;
    for (VarId var : used) guard.terms.push_back(Term::MakeVar(var));
    q.AddAtom(std::move(guard));
  }
  return q;
}

}  // namespace shapcq
