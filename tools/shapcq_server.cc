// shapcq_server — long-lived attribution server over incremental
// ShapleyEngines.
//
// Speaks the line protocol of src/service/command_loop.h on stdin/stdout
// (or replays a session script with --script), or serves many concurrent
// TCP clients with --listen HOST:PORT over a shared, lock-striped
// registry. One process holds many open sessions; each session's engine is
// maintained incrementally across DELTA batches and evicted
// least-recently-used under memory pressure. With --log-dir, every session
// is backed by a write-ahead log and a killed server resumes bit-identical
// on restart.

#include <atomic>
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <iostream>
#include <string>

#include "core/shapley_engine.h"
#include "db/textio.h"
#include "service/command_loop.h"
#include "service/net/tcp_server.h"

namespace {

volatile std::sig_atomic_t g_stop = 0;

void HandleStopSignal(int /*signum*/) { g_stop = 1; }

void PrintUsage() {
  std::fprintf(
      stderr,
      "usage: shapcq_server [--script FILE | --listen HOST:PORT]\n"
      "                     [--threads N]\n"
      "                     [--budget-bytes B] [--max-resident K]\n"
      "                     [--log-dir DIR] [--fsync={always,batch,off}]\n"
      "                     [--snapshot-every N] [--max-line-bytes N]\n"
      "                     [--max-facts N] [--max-conns N] [--stripes N]\n"
      "                     [--queue-bound N] [--stats-bytes={exact,off}]\n"
      "                     [--default-deadline-ms N] [--io-timeout-ms N]\n"
      "                     [--idle-timeout-ms N]\n"
      "\n"
      "Long-lived attribution server: one incremental Shapley engine per\n"
      "open session, byte-budgeted LRU eviction, rebuild-on-readmission,\n"
      "optional per-session write-ahead logs with crash recovery.\n"
      "Reads one command per line from stdin (or FILE with --script), or\n"
      "serves many concurrent TCP clients with --listen, and writes\n"
      "results to stdout (or each client's socket). Commands:\n"
      "\n"
      "  OPEN <session> <query-rule>\n"
      "      Open a session with an empty database. The query must be\n"
      "      safe and self-join-free; hierarchical queries get the exact\n"
      "      incremental engine, non-hierarchical ones are admitted as\n"
      "      approx-only sessions (acked 'ok open <id> approx-only') whose\n"
      "      reports must pass approx=EPS,DELTA. E.g.:\n"
      "        OPEN s1 q() :- Stud(x), not TA(x), Reg(x,y)\n"
      "  DELTA <session> + <fact-literal>\n"
      "  DELTA <session> - <fact-literal>\n"
      "      Insert or delete one fact; '*' marks endogenous, e.g.:\n"
      "        DELTA s1 + Reg(Adam,OS)*\n"
      "      Deletes name the fact by literal. While the session's engine\n"
      "      is resident, each delta patches one root-to-leaf path; after\n"
      "      an eviction, deltas apply to the retained database and the\n"
      "      next REPORT rebuilds.\n"
      "  REPORT <session> [key=value ...]\n"
      "      Stream the ranked attribution table (every endogenous fact's\n"
      "      Shapley value). One grammar with shapcq_cli's report flags:\n"
      "        top_k=K          keep only the K highest-ranked rows\n"
      "                         (0 = all)\n"
      "        threads=N        worker threads (1 = serial, 0 = all\n"
      "                         hardware threads; values are identical\n"
      "                         at any count)\n"
      "        approx=EPS,DELTA sampling tier: additive error EPS at\n"
      "                         joint failure probability DELTA, both in\n"
      "                         (0,1); approx=EPS defaults DELTA to 0.05.\n"
      "                         Required on approx-only sessions; rows\n"
      "                         then carry +-ci and sample counts.\n"
      "        seed=S           RNG seed of the sampling tier (default 0)\n"
      "        max_samples=M    per-orbit sample cap (0 = the full\n"
      "                         Hoeffding count; capping widens the\n"
      "                         intervals)\n"
      "        force_approx=0|1 sample even when an exact engine applies\n"
      "        deadline_ms=N    wall-clock budget for this report; expiry\n"
      "                         returns 'error: [E_DEADLINE] ...' (or\n"
      "                         degrades, per on_deadline). 0 = none —\n"
      "                         also overrides --default-deadline-ms\n"
      "        on_deadline=error|approx\n"
      "                         policy when an exact report's deadline\n"
      "                         expires: 'error' (default) fails with\n"
      "                         [E_DEADLINE]; 'approx' answers from the\n"
      "                         sampling tier (work-bounded, 'approx:'\n"
      "                         provenance line). A later REPORT without a\n"
      "                         deadline is bit-identical to an undeadlined\n"
      "                         run either way.\n"
      "      The deprecated positional form '[top_k] [--threads N]' is\n"
      "      still accepted (a --default-deadline-ms applies to it too —\n"
      "      it carries no deadline keys of its own).\n"
      "  SNAPSHOT <session>\n"
      "      Checkpoint the session's fact table into its write-ahead log\n"
      "      and drop the replayed-past prefix (durability only; bounds\n"
      "      recovery replay time).\n"
      "  STATS            registry counters (sessions, hits, evictions,\n"
      "                   resident engine bytes; +log bytes with --log-dir)\n"
      "  STATS <session>  per-session counters (+log_bytes and\n"
      "                   since_snapshot with --log-dir)\n"
      "  CLOSE <session>  close the session (removes its log)\n"
      "\n"
      "Blank lines and '#' comments are skipped; commands echo as\n"
      "'> <line>' so a transcript reads as a session log. The exit code is\n"
      "non-zero if any command errored (0 in listen mode: command errors\n"
      "belong to clients). SIGTERM/SIGINT drain the current command (in\n"
      "listen mode: stop accepting, drain every connection's in-flight\n"
      "command), sync all session logs, and exit cleanly. Log failures\n"
      "and resource-guard rejections print structured codes ([E_LOG_IO],\n"
      "[E_LINE_TOO_LONG], [E_FACT_CAP], [E_OVERLOAD]) and keep the loop\n"
      "alive.\n"
      "\n"
      "  --script FILE      replay FILE instead of reading stdin\n"
      "  --threads N        default REPORT worker threads (1 = serial,\n"
      "                     0 = all hardware threads; values are identical\n"
      "                     at any thread count)\n"
      "  --budget-bytes B   total resident engine bytes before LRU eviction\n"
      "                     (0 = unlimited)\n"
      "  --max-resident K   max resident engines before LRU eviction\n"
      "                     (0 = unlimited; deterministic across platforms)\n"
      "  --log-dir DIR      durable sessions: one append-only write-ahead\n"
      "                     log per session under DIR. On startup every log\n"
      "                     in DIR is replayed (torn tails truncated) and\n"
      "                     the sessions resume where they left off.\n"
      "  --fsync=POLICY     when appended records reach stable storage:\n"
      "                     'always' (per record; survives OS crash),\n"
      "                     'batch' (at REPORT/SNAPSHOT/CLOSE/shutdown;\n"
      "                     bounded loss window on OS crash — the default),\n"
      "                     'off' (page cache only; still survives a\n"
      "                     process kill)\n"
      "  --snapshot-every N auto-compact a session's log after N deltas\n"
      "                     since its last snapshot (0 = only explicit\n"
      "                     SNAPSHOT commands)\n"
      "  --max-line-bytes N reject longer input lines (default 1048576,\n"
      "                     0 = unlimited)\n"
      "  --max-facts N      per-session live-fact cap (0 = unlimited;\n"
      "                     race-free under concurrent clients — enforced\n"
      "                     under the session's stripe lock)\n"
      "  --listen HOST:PORT serve concurrent TCP clients instead of stdin\n"
      "                     (one protocol loop per connection over one\n"
      "                     shared registry; port 0 = OS-assigned). The\n"
      "                     bound address is printed to stderr as\n"
      "                     'listening on HOST:PORT' once accepting.\n"
      "  --max-conns N      concurrent-connection cap in listen mode; a\n"
      "                     connection over the cap receives one\n"
      "                     'error: [E_OVERLOAD] ...' line and is closed\n"
      "                     (default 64)\n"
      "  --stripes N        lock stripes sessions are hashed across, so\n"
      "                     commands on distinct sessions run in parallel\n"
      "                     (default 8 in listen mode, 1 otherwise;\n"
      "                     1 = fully serialized — the golden-transcript\n"
      "                     configuration)\n"
      "  --queue-bound N    commands allowed to queue behind one stripe's\n"
      "                     lock before the next fails fast with\n"
      "                     'error: [E_OVERLOAD] ...' (0 = block forever,\n"
      "                     the default)\n"
      "  --default-deadline-ms N\n"
      "                     deadline for REPORTs that carry no deadline_ms\n"
      "                     key of their own (0 = none, the default); a\n"
      "                     request's explicit deadline_ms — even =0 —\n"
      "                     always wins\n"
      "  --io-timeout-ms N  listen mode: longest a connection's read waits\n"
      "                     for the peer to send anything before the\n"
      "                     connection is closed (0 = forever, the\n"
      "                     default); reaps dead peers and slow-loris\n"
      "                     clients, counted as io_timeouts= in STATS\n"
      "  --idle-timeout-ms N\n"
      "                     listen mode: connections with no socket\n"
      "                     activity in either direction for N ms are\n"
      "                     half-closed by the watchdog (in-flight\n"
      "                     responses still delivered; 0 = never, the\n"
      "                     default); also counted as io_timeouts=\n"
      "  --stats-bytes=MODE 'exact' (default) includes the platform-\n"
      "                     dependent bytes= engine-size estimate in the\n"
      "                     global STATS line; 'off' omits it so\n"
      "                     transcripts diff byte-identical across\n"
      "                     platforms (CI golden files)\n"
      "  --engine=CORE      numeric core for every engine build: 'arena'\n"
      "                     (flat SoA, the default) or 'tree' (the\n"
      "                     pointer-linked oracle / escape hatch); reports\n"
      "                     are bit-identical on either core\n");
}

}  // namespace

int main(int argc, char** argv) {
  using namespace shapcq;
  std::string script_path;
  std::string listen_address;
  bool stripes_given = false;
  CommandLoopOptions options;
  TcpServerOptions net_options;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next = [&]() -> const char* {
      if (i + 1 >= argc) {
        PrintUsage();
        std::exit(2);
      }
      return argv[++i];
    };
    auto next_size = [&](const char* flag) -> size_t {
      const char* text = next();
      size_t value = 0;
      if (!ParseSizeStrict(text, &value)) {
        std::fprintf(stderr, "bad %s value: %s\n", flag, text);
        std::exit(2);
      }
      return value;
    };
    if (arg == "--script") {
      script_path = next();
    } else if (arg == "--threads") {
      options.default_threads = next_size("--threads");
    } else if (arg == "--budget-bytes") {
      options.registry.engine_byte_budget = next_size("--budget-bytes");
    } else if (arg == "--max-resident") {
      options.registry.max_resident_engines = next_size("--max-resident");
    } else if (arg == "--log-dir") {
      options.log_dir = next();
    } else if (arg.rfind("--fsync=", 0) == 0) {
      auto policy = ParseFsyncPolicy(arg.substr(std::strlen("--fsync=")));
      if (!policy.ok()) {
        std::fprintf(stderr, "%s\n", policy.error().c_str());
        return 2;
      }
      options.fsync = policy.value();
    } else if (arg == "--snapshot-every") {
      options.snapshot_every = next_size("--snapshot-every");
    } else if (arg == "--max-line-bytes") {
      options.max_line_bytes = next_size("--max-line-bytes");
    } else if (arg == "--max-facts") {
      options.max_session_facts = next_size("--max-facts");
    } else if (arg == "--listen") {
      listen_address = next();
    } else if (arg == "--max-conns") {
      net_options.max_connections = next_size("--max-conns");
    } else if (arg == "--stripes") {
      options.registry.num_stripes = next_size("--stripes");
      stripes_given = true;
    } else if (arg == "--queue-bound") {
      options.registry.max_stripe_queue = next_size("--queue-bound");
    } else if (arg == "--default-deadline-ms") {
      options.default_deadline_ms = next_size("--default-deadline-ms");
    } else if (arg == "--io-timeout-ms") {
      net_options.io_timeout_ms = next_size("--io-timeout-ms");
    } else if (arg == "--idle-timeout-ms") {
      net_options.idle_timeout_ms = next_size("--idle-timeout-ms");
    } else if (arg.rfind("--engine=", 0) == 0) {
      const std::string name = arg.substr(std::strlen("--engine="));
      const auto core = ParseEngineCore(name);
      if (!core.has_value()) {
        std::fprintf(stderr,
                     "bad --engine value: %s (expected arena or tree)\n",
                     name.c_str());
        return 2;
      }
      options.registry.engine_core = *core;
    } else if (arg.rfind("--stats-bytes=", 0) == 0) {
      const std::string mode = arg.substr(std::strlen("--stats-bytes="));
      if (mode == "exact") {
        options.stats_show_bytes = true;
      } else if (mode == "off") {
        options.stats_show_bytes = false;
      } else {
        std::fprintf(stderr,
                     "bad --stats-bytes value: %s (expected exact or off)\n",
                     mode.c_str());
        return 2;
      }
    } else if (arg == "--help" || arg == "-h") {
      PrintUsage();
      return 0;
    } else {
      std::fprintf(stderr, "unknown flag: %s\n", arg.c_str());
      PrintUsage();
      return 2;
    }
  }

  if (!listen_address.empty() && !script_path.empty()) {
    std::fprintf(stderr, "--listen and --script are mutually exclusive\n");
    return 2;
  }

  // Graceful shutdown: drain the in-flight command (every connection's, in
  // listen mode), sync logs, exit normally. No SA_RESTART, so a signal
  // interrupts a blocking stdin read or the accept poll instead of waiting
  // for the next line/client.
  struct sigaction action;
  std::memset(&action, 0, sizeof(action));
  action.sa_handler = HandleStopSignal;
  sigemptyset(&action.sa_mask);
  action.sa_flags = 0;
  sigaction(SIGTERM, &action, nullptr);
  sigaction(SIGINT, &action, nullptr);

  if (!listen_address.empty()) {
    const size_t colon = listen_address.rfind(':');
    if (colon == std::string::npos || colon == 0 ||
        colon + 1 >= listen_address.size()) {
      std::fprintf(stderr, "bad --listen value: %s (expected HOST:PORT)\n",
                   listen_address.c_str());
      return 2;
    }
    net_options.host = listen_address.substr(0, colon);
    size_t port_value = 0;
    if (!ParseSizeStrict(listen_address.substr(colon + 1), &port_value) ||
        port_value > 65535) {
      std::fprintf(stderr, "bad --listen port: %s\n",
                   listen_address.substr(colon + 1).c_str());
      return 2;
    }
    net_options.port = static_cast<uint16_t>(port_value);
    // Concurrent clients by default get concurrent stripes; --stripes 1
    // restores fully serialized (deterministic-transcript) semantics.
    if (!stripes_given) options.registry.num_stripes = 8;
    // Shared-mode loops never construct the registry, so the loop-level
    // fact cap must be merged down here.
    if (options.registry.max_session_facts == 0) {
      options.registry.max_session_facts = options.max_session_facts;
    }

    // A vanished client must surface as a failed send on its connection,
    // never as a process-killing SIGPIPE.
    std::signal(SIGPIPE, SIG_IGN);

    // One transport-counter block for all connections: STATS from any
    // client shows the server-wide io_timeouts= tally.
    TransportStats transport;
    options.transport_stats = &transport;

    EngineRegistry registry(options.registry);
    SessionLogManager log_manager;
    SessionLogManager* log = nullptr;
    if (!options.log_dir.empty()) {
      auto opened = SessionLogManager::Open(options.log_dir, options.fsync,
                                            options.snapshot_every);
      if (!opened.ok()) {
        std::fprintf(stderr, "shapcq_server: %s\n", opened.error().c_str());
        return 1;
      }
      log_manager = std::move(opened).value();
      auto recovered = log_manager.Recover(&registry);
      if (!recovered.ok()) {
        std::fprintf(stderr, "shapcq_server: %s\n",
                     recovered.error().c_str());
        return 1;
      }
      std::fprintf(stderr, "shapcq_server: recovered sessions=%zu from %s\n",
                   recovered.value(), options.log_dir.c_str());
      log = &log_manager;
    }

    auto listening =
        TcpServer::Listen(net_options, options, &registry, log);
    if (!listening.ok()) {
      std::fprintf(stderr, "shapcq_server: %s\n", listening.error().c_str());
      return 1;
    }
    TcpServer server = std::move(listening).value();
    // Harnesses parse this line for the resolved (possibly ephemeral) port.
    std::fprintf(stderr, "shapcq_server: listening on %s:%u\n",
                 net_options.host.c_str(),
                 static_cast<unsigned>(server.port()));
    const size_t served = server.Serve(&g_stop);
    if (log != nullptr) {
      auto synced = log->SyncAll();
      if (!synced.ok()) {
        std::fprintf(stderr, "shapcq_server: %s\n", synced.error().c_str());
        return 1;
      }
    }
    std::fprintf(stderr,
                 "shapcq_server: drained, served=%zu client_errors=%zu "
                 "rejected=%zu io_timeouts=%zu\n",
                 served, server.total_errors(),
                 server.rejected_connections(),
                 transport.io_timeouts.load(std::memory_order_relaxed));
    // Command errors belong to the clients that issued them; a drained
    // server exits clean.
    return 0;
  }

  CommandLoop loop(options);
  auto recovered = loop.InitDurability();
  if (!recovered.ok()) {
    std::fprintf(stderr, "shapcq_server: %s\n", recovered.error().c_str());
    return 1;
  }
  if (!options.log_dir.empty()) {
    std::fprintf(stderr, "shapcq_server: recovered sessions=%zu from %s\n",
                 recovered.value(), options.log_dir.c_str());
  }

  int code;
  if (!script_path.empty()) {
    std::ifstream script(script_path);
    if (!script) {
      std::fprintf(stderr, "cannot open script %s\n", script_path.c_str());
      return 1;
    }
    code = loop.Run(script, std::cout, &g_stop);
  } else {
    code = loop.Run(std::cin, std::cout, &g_stop);
  }
  if (g_stop) {
    std::fprintf(stderr,
                 "shapcq_server: caught signal, drained and synced logs\n");
  }
  return code;
}
