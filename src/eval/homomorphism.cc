#include "eval/homomorphism.h"

#include <algorithm>
#include <set>

#include "util/check.h"

namespace shapcq {

namespace {

// Backtracking matcher. Positive atoms are matched in an order that prefers
// atoms with already-bound variables (cheap static heuristic); negative atoms
// are checked once all their variables are bound.
class Matcher {
 public:
  Matcher(const CQ& q, const Database& db, const World& world,
          bool enforce_negative,
          const std::function<bool(const Assignment&)>& callback)
      : q_(q),
        db_(db),
        world_(world),
        enforce_negative_(enforce_negative),
        callback_(callback),
        assignment_(q.var_count(), Value{-1}) {
    positive_ = q.PositiveAtoms();
    negative_ = q.NegativeAtoms();
  }

  // Returns true if stopped early by the callback.
  bool Run() {
    stopped_ = false;
    MatchPositive(0);
    return stopped_;
  }

 private:
  // Does `fact_tuple` match `atom` under the current partial assignment?
  // Binds newly-bound variables into *newly.
  bool TryBind(const Atom& atom, const Tuple& fact_tuple,
               std::vector<VarId>* newly) {
    for (size_t i = 0; i < atom.terms.size(); ++i) {
      const Term& term = atom.terms[i];
      if (term.IsConst()) {
        if (!(term.constant == fact_tuple[i])) return false;
      } else {
        Value& bound = assignment_[static_cast<size_t>(term.var)];
        if (bound.id < 0) {
          bound = fact_tuple[i];
          newly->push_back(term.var);
        } else if (!(bound == fact_tuple[i])) {
          return false;
        }
      }
    }
    return true;
  }

  void Unbind(const std::vector<VarId>& newly) {
    for (VarId var : newly) assignment_[static_cast<size_t>(var)] = Value{-1};
  }

  void MatchPositive(size_t depth) {
    if (stopped_) return;
    if (depth == positive_.size()) {
      BindFreeVars(0);
      return;
    }
    // Pick the unmatched positive atom with the most bound variables.
    size_t best = depth;
    int best_bound = -1;
    for (size_t i = depth; i < positive_.size(); ++i) {
      int bound = 0;
      for (const Term& term : q_.atom(positive_[i]).terms) {
        if (term.IsConst() ||
            assignment_[static_cast<size_t>(term.var)].id >= 0) {
          ++bound;
        }
      }
      if (bound > best_bound) {
        best_bound = bound;
        best = i;
      }
    }
    std::swap(positive_[depth], positive_[best]);
    const Atom& atom = q_.atom(positive_[depth]);
    const RelationId rel = db_.schema().Find(atom.relation);
    for (FactId fact : db_.facts_of(rel)) {
      if (!db_.IsPresent(fact, world_)) continue;
      std::vector<VarId> newly;
      if (TryBind(atom, db_.tuple_of(fact), &newly)) {
        MatchPositive(depth + 1);
      }
      Unbind(newly);
      if (stopped_) break;
    }
    std::swap(positive_[depth], positive_[best]);
  }

  // Variables not bound by positive atoms (head-only vars of unsafe queries)
  // range over the active domain.
  void BindFreeVars(size_t var_index) {
    if (stopped_) return;
    while (var_index < assignment_.size() &&
           (assignment_[var_index].id >= 0 || !IsUsed(var_index))) {
      ++var_index;
    }
    if (var_index == assignment_.size()) {
      Finish();
      return;
    }
    for (Value value : db_.ActiveDomain()) {
      assignment_[var_index] = value;
      BindFreeVars(var_index + 1);
      if (stopped_) break;
    }
    assignment_[var_index] = Value{-1};
  }

  bool IsUsed(size_t var_index) {
    if (used_.empty()) {
      used_.assign(q_.var_count(), false);
      for (const Atom& atom : q_.atoms()) {
        for (const Term& term : atom.terms) {
          if (term.IsVar()) used_[static_cast<size_t>(term.var)] = true;
        }
      }
      for (VarId var : q_.head()) used_[static_cast<size_t>(var)] = true;
    }
    return used_[var_index];
  }

  void Finish() {
    if (enforce_negative_) {
      for (size_t index : negative_) {
        const Atom& atom = q_.atom(index);
        Tuple grounded(atom.terms.size());
        for (size_t i = 0; i < atom.terms.size(); ++i) {
          const Term& term = atom.terms[i];
          grounded[i] = term.IsConst()
                            ? term.constant
                            : assignment_[static_cast<size_t>(term.var)];
          SHAPCQ_CHECK_MSG(grounded[i].id >= 0,
                           "negative atom variable unbound");
        }
        FactId fact = db_.FindFact(atom.relation, grounded);
        if (fact != kNoFact && db_.IsPresent(fact, world_)) return;  // blocked
      }
    }
    if (!callback_(assignment_)) stopped_ = true;
  }

  const CQ& q_;
  const Database& db_;
  const World& world_;
  const bool enforce_negative_;
  const std::function<bool(const Assignment&)>& callback_;
  Assignment assignment_;
  std::vector<size_t> positive_;
  std::vector<size_t> negative_;
  std::vector<bool> used_;
  bool stopped_ = false;
};

}  // namespace

bool ForEachHomomorphism(
    const CQ& q, const Database& db, const World& world, bool enforce_negative,
    const std::function<bool(const Assignment&)>& callback) {
  Matcher matcher(q, db, world, enforce_negative, callback);
  return matcher.Run();
}

bool EvalBoolean(const CQ& q, const Database& db, const World& world) {
  return ForEachHomomorphism(q, db, world, /*enforce_negative=*/true,
                             [](const Assignment&) { return false; });
}

bool EvalBooleanAllFacts(const CQ& q, const Database& db) {
  return EvalBoolean(q, db, db.FullWorld());
}

bool EvalBoolean(const UCQ& q, const Database& db, const World& world) {
  for (const CQ& disjunct : q.disjuncts()) {
    if (EvalBoolean(disjunct, db, world)) return true;
  }
  return false;
}

std::vector<Tuple> EnumerateAnswers(const CQ& q, const Database& db,
                                    const World& world) {
  std::set<Tuple> answers;
  ForEachHomomorphism(q, db, world, /*enforce_negative=*/true,
                      [&](const Assignment& assignment) {
                        Tuple answer(q.head().size());
                        for (size_t i = 0; i < q.head().size(); ++i) {
                          answer[i] =
                              assignment[static_cast<size_t>(q.head()[i])];
                        }
                        answers.insert(std::move(answer));
                        return true;
                      });
  return std::vector<Tuple>(answers.begin(), answers.end());
}

}  // namespace shapcq
