#include "query/ucq.h"

namespace shapcq {

std::string UCQ::ToString() const {
  std::string out;
  for (size_t i = 0; i < disjuncts_.size(); ++i) {
    if (i > 0) out += "\n";
    out += disjuncts_[i].ToString();
  }
  return out;
}

}  // namespace shapcq
