// The worker-pool utility and the thread-safety contract of the
// combinatorics caches: task accounting, ParallelFor coverage, pool reuse,
// and a many-threads hammer on Factorial/Binomial/BinomialRow that
// differential-checks every concurrently-served value against independently
// computed single-threaded references.

#include "util/thread_pool.h"

#include <gtest/gtest.h>

#include <atomic>
#include <tuple>
#include <utility>
#include <vector>

#include "util/bigint.h"
#include "util/combinatorics.h"

namespace shapcq {
namespace {

TEST(ThreadPoolTest, RunsEverySubmittedTask) {
  ThreadPool pool(4);
  EXPECT_EQ(pool.size(), 4u);
  std::atomic<int> counter{0};
  for (int i = 0; i < 100; ++i) {
    pool.Submit([&counter] { counter.fetch_add(1); });
  }
  pool.Wait();
  EXPECT_EQ(counter.load(), 100);
}

TEST(ThreadPoolTest, WaitWithNothingSubmittedReturns) {
  ThreadPool pool(2);
  pool.Wait();  // must not hang
}

TEST(ThreadPoolTest, ZeroThreadRequestStillGetsOneWorker) {
  ThreadPool pool(0);
  EXPECT_EQ(pool.size(), 1u);
  std::atomic<int> counter{0};
  pool.Submit([&counter] { counter.fetch_add(1); });
  pool.Wait();
  EXPECT_EQ(counter.load(), 1);
}

TEST(ThreadPoolTest, ParallelForVisitsEachIndexExactlyOnce) {
  ThreadPool pool(8);
  const size_t n = 10000;
  // One pre-assigned slot per index: exactly-once coverage shows up as every
  // slot incremented to 1, with no atomics needed in the body itself.
  std::vector<std::atomic<int>> hits(n);
  pool.ParallelFor(n, [&hits](size_t i) { hits[i].fetch_add(1); });
  for (size_t i = 0; i < n; ++i) {
    EXPECT_EQ(hits[i].load(), 1) << "index " << i;
  }
}

TEST(ThreadPoolTest, ParallelForHandlesFewerItemsThanWorkers) {
  ThreadPool pool(8);
  std::atomic<int> counter{0};
  pool.ParallelFor(3, [&counter](size_t) { counter.fetch_add(1); });
  EXPECT_EQ(counter.load(), 3);
  pool.ParallelFor(0, [&counter](size_t) { counter.fetch_add(1); });
  EXPECT_EQ(counter.load(), 3);
}

TEST(ThreadPoolTest, ReusableAcrossRounds) {
  ThreadPool pool(3);
  std::atomic<int> counter{0};
  for (int round = 0; round < 5; ++round) {
    pool.ParallelFor(20, [&counter](size_t) { counter.fetch_add(1); });
    EXPECT_EQ(counter.load(), (round + 1) * 20);
  }
}

TEST(ThreadPoolTest, ResolveThreadCount) {
  EXPECT_EQ(ThreadPool::ResolveThreadCount(1), 1u);
  EXPECT_EQ(ThreadPool::ResolveThreadCount(7), 7u);
  EXPECT_GE(ThreadPool::ResolveThreadCount(0), 1u);  // auto: hardware, >= 1
}

// ---------------------------------------------------------------------------
// Combinatorics cache concurrency.
// ---------------------------------------------------------------------------

// Independent references, no caches: n! by running product, C(n, k) row by
// Pascal's rule. Deliberately separate code from Combinatorics so the stress
// test below is a true differential.
BigInt ReferenceFactorial(size_t n) {
  BigInt result(1);
  for (size_t i = 2; i <= n; ++i) result *= BigInt(static_cast<int64_t>(i));
  return result;
}

std::vector<BigInt> ReferenceBinomialRow(size_t n) {
  std::vector<BigInt> row{BigInt(1)};
  for (size_t m = 1; m <= n; ++m) {
    std::vector<BigInt> next{BigInt(1)};
    for (size_t k = 1; k < row.size(); ++k) next.push_back(row[k - 1] + row[k]);
    next.push_back(BigInt(1));
    row = std::move(next);
  }
  return row;
}

TEST(CombinatoricsConcurrencyTest, ConcurrentGrowthServesExactValues) {
  // Past the range other tests touch, so workers race on cache GROWTH, not
  // only on warmed reads. Each worker walks the n-range in a different
  // stride order and keeps copies of everything it was served; the copies
  // are differential-checked against the references afterwards.
  constexpr size_t kThreads = 8;
  constexpr size_t kMaxN = 160;
  struct Served {
    std::vector<std::pair<size_t, BigInt>> factorials;
    std::vector<std::pair<size_t, std::vector<BigInt>>> rows;
    std::vector<std::tuple<size_t, size_t, BigInt>> binomials;
  };
  std::vector<Served> served(kThreads);
  {
    ThreadPool pool(kThreads);
    pool.ParallelFor(kThreads, [&served](size_t t) {
      Served& mine = served[t];
      for (size_t step = 0; step <= kMaxN; ++step) {
        // Different visit orders per thread: some ascend, some descend.
        const size_t n = (t % 2 == 0) ? step : kMaxN - step;
        mine.factorials.emplace_back(n, Combinatorics::Factorial(n));
        if (n % (t + 2) == 0) {
          mine.rows.emplace_back(n, Combinatorics::BinomialRow(n));
        }
        mine.binomials.emplace_back(n, n / 2, Combinatorics::Binomial(n, n / 2));
      }
    });
  }
  // Reference values once, single-threaded.
  std::vector<BigInt> factorial_ref;
  std::vector<std::vector<BigInt>> row_ref;
  for (size_t n = 0; n <= kMaxN; ++n) {
    factorial_ref.push_back(ReferenceFactorial(n));
    row_ref.push_back(ReferenceBinomialRow(n));
  }
  for (size_t t = 0; t < kThreads; ++t) {
    for (const auto& [n, value] : served[t].factorials) {
      EXPECT_EQ(value, factorial_ref[n]) << "thread " << t << " n=" << n;
    }
    for (const auto& [n, row] : served[t].rows) {
      EXPECT_EQ(row, row_ref[n]) << "thread " << t << " n=" << n;
    }
    for (const auto& [n, k, value] : served[t].binomials) {
      EXPECT_EQ(value, row_ref[n][k]) << "thread " << t << " C(" << n << ","
                                      << k << ")";
    }
  }
}

TEST(CombinatoricsConcurrencyTest, PrewarmThenHammerReads) {
  constexpr size_t kMaxN = 200;
  Combinatorics::Prewarm(kMaxN);
  const std::vector<BigInt> expected_row = ReferenceBinomialRow(kMaxN);
  const BigInt expected_factorial = ReferenceFactorial(kMaxN);
  ThreadPool pool(8);
  std::atomic<int> mismatches{0};
  pool.ParallelFor(64, [&](size_t i) {
    const size_t n = kMaxN - (i % 5);  // a few distinct warmed rows
    if (Combinatorics::BinomialRow(kMaxN) != expected_row) mismatches++;
    if (Combinatorics::Factorial(kMaxN) != expected_factorial) mismatches++;
    if (Combinatorics::Binomial(n, 3) !=
        Combinatorics::BinomialRow(n)[3]) {
      mismatches++;
    }
  });
  EXPECT_EQ(mismatches.load(), 0);
}

TEST(CombinatoricsConcurrencyTest, ConcurrentPrewarmIsIdempotent) {
  ThreadPool pool(6);
  pool.ParallelFor(6, [](size_t t) { Combinatorics::Prewarm(120 + t * 7); });
  EXPECT_EQ(Combinatorics::Factorial(5).ToInt64(), 120);
  EXPECT_EQ(Combinatorics::Binomial(120, 2).ToInt64(), 7140);
}

}  // namespace
}  // namespace shapcq
