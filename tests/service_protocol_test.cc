// Line-protocol surface of the attribution server: command grammar, output
// framing, and the error paths the server must survive (bad queries, bad
// mutations, unknown sessions) without corrupting registry state.

#include <cerrno>
#include <csignal>
#include <sstream>
#include <streambuf>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "service/command_loop.h"

namespace shapcq {
namespace {

// Runs one line and returns its full output (echo included).
std::string Exec(CommandLoop* loop, const std::string& line) {
  std::string out;
  loop->ExecuteLine(line, &out);
  return out;
}

CommandLoop MakeLoop() {
  CommandLoopOptions options;
  return CommandLoop(options);
}

TEST(CommandLoopTest, OpenDeltaReportCloseHappyPath) {
  CommandLoop loop = MakeLoop();
  EXPECT_EQ(Exec(&loop, "OPEN s1 q() :- R(x)"),
            "> OPEN s1 q() :- R(x)\nok open s1\n");
  EXPECT_EQ(Exec(&loop, "DELTA s1 + R(a)*"),
            "> DELTA s1 + R(a)*\nok delta s1 facts=1 endo=1\n");
  const std::string report = Exec(&loop, "REPORT s1");
  EXPECT_NE(report.find("report s1 rows=1 endo=1\n"), std::string::npos);
  EXPECT_NE(report.find("engine: CntSat (incremental)\n"), std::string::npos);
  EXPECT_NE(report.find("R(a)*"), std::string::npos);
  EXPECT_NE(report.find("end report s1\n"), std::string::npos);
  EXPECT_EQ(Exec(&loop, "CLOSE s1"), "> CLOSE s1\nok close s1\n");
  EXPECT_EQ(loop.error_count(), 0u);
}

TEST(CommandLoopTest, BlankAndCommentLinesProduceNoOutput) {
  CommandLoop loop = MakeLoop();
  EXPECT_EQ(Exec(&loop, ""), "");
  EXPECT_EQ(Exec(&loop, "   \t"), "");
  EXPECT_EQ(Exec(&loop, "# a comment"), "");
  EXPECT_EQ(loop.error_count(), 0u);
}

TEST(CommandLoopTest, ReportOnEmptyDatabase) {
  // A session may be reported before any delta: zero rows, zero total.
  CommandLoop loop = MakeLoop();
  Exec(&loop, "OPEN s1 q() :- R(x), not S(x)");
  const std::string report = Exec(&loop, "REPORT s1");
  EXPECT_NE(report.find("report s1 rows=0 endo=0\n"), std::string::npos);
  EXPECT_NE(report.find("total"), std::string::npos);
  EXPECT_NE(report.find("end report s1\n"), std::string::npos);
  EXPECT_EQ(loop.error_count(), 0u);
}

TEST(CommandLoopTest, ReportHonorsTopKAndThreads) {
  CommandLoop loop = MakeLoop();
  Exec(&loop, "OPEN s1 q() :- R(x)");
  Exec(&loop, "DELTA s1 + R(a)*");
  Exec(&loop, "DELTA s1 + R(b)*");
  Exec(&loop, "DELTA s1 + R(c)*");
  const std::string full = Exec(&loop, "REPORT s1");
  EXPECT_NE(full.find("rows=3 endo=3"), std::string::npos);
  const std::string top = Exec(&loop, "REPORT s1 2");
  EXPECT_NE(top.find("rows=2 endo=3"), std::string::npos);
  // --threads changes nothing about the output values (threading contract).
  const std::string parallel = Exec(&loop, "REPORT s1 2 --threads 4");
  EXPECT_EQ(top.substr(top.find('\n') + 1),
            parallel.substr(parallel.find('\n') + 1));
  EXPECT_EQ(loop.error_count(), 0u);
}

TEST(CommandLoopTest, OpenErrors) {
  CommandLoop loop = MakeLoop();
  EXPECT_NE(Exec(&loop, "OPEN").find("error: usage: OPEN"),
            std::string::npos);
  EXPECT_NE(Exec(&loop, "OPEN s1").find("error: usage: OPEN"),
            std::string::npos);
  EXPECT_NE(Exec(&loop, "OPEN s1 not a query").find("error: open s1:"),
            std::string::npos);
  // Non-hierarchical (but evaluable) query: admitted as an approx-only
  // session — the sampling tier serves it — and announced as such.
  EXPECT_EQ(Exec(&loop, "OPEN s0 q() :- R(x,y), S(x), T(y)"),
            "> OPEN s0 q() :- R(x,y), S(x), T(y)\nok open s0 approx-only\n");
  // Unsafe negation and self-joins stay rejected: no tier can serve them.
  EXPECT_NE(Exec(&loop, "OPEN s1 q() :- R(x), not S(x,y)").find("unsafe"),
            std::string::npos);
  EXPECT_NE(Exec(&loop, "OPEN s1 q() :- R(x), R(y)").find("self-join"),
            std::string::npos);
  // Duplicate session id.
  Exec(&loop, "OPEN s1 q() :- R(x)");
  EXPECT_NE(Exec(&loop, "OPEN s1 q() :- R(x)").find("already open"),
            std::string::npos);
  EXPECT_EQ(loop.error_count(), 6u);
}

TEST(CommandLoopTest, DeltaErrors) {
  CommandLoop loop = MakeLoop();
  Exec(&loop, "OPEN s1 q() :- R(x), not S(x)");
  EXPECT_NE(Exec(&loop, "DELTA s1").find("error: usage: DELTA"),
            std::string::npos);
  EXPECT_NE(Exec(&loop, "DELTA nosuch + R(a)*").find("no open session"),
            std::string::npos);
  EXPECT_NE(Exec(&loop, "DELTA s1 * R(a)").find("expected '+' or '-'"),
            std::string::npos);
  EXPECT_NE(Exec(&loop, "DELTA s1 + R(a").find("unterminated"),
            std::string::npos);
  EXPECT_NE(Exec(&loop, "DELTA s1 + R(a)* extra").find("trailing input"),
            std::string::npos);
  // Apply-time errors: duplicates, arity mismatches, deleting the absent.
  // Captured as strings so the resident-engine replay below can assert the
  // error surface is BYTE-identical regardless of residency.
  Exec(&loop, "DELTA s1 + R(a)*");
  const std::string dup = Exec(&loop, "DELTA s1 + R(a)*");
  EXPECT_NE(dup.find("duplicate fact in R"), std::string::npos);
  const std::string bad_arity = Exec(&loop, "DELTA s1 + R(a,b)*");
  EXPECT_NE(bad_arity.find("arity mismatch"), std::string::npos);
  // S has no facts, but the query atom pins its arity to 1.
  const std::string bad_atom_arity = Exec(&loop, "DELTA s1 + S(a,b)");
  EXPECT_NE(bad_atom_arity.find("arity mismatch"), std::string::npos);
  const std::string gone = Exec(&loop, "DELTA s1 - R(zzz)");
  EXPECT_NE(gone.find("no such fact R(zzz)"), std::string::npos);
  EXPECT_EQ(loop.error_count(), 9u);

  // The same apply-time errors once the engine is resident (post-REPORT):
  // transcripts must not depend on residency or eviction timing.
  Exec(&loop, "REPORT s1");
  EXPECT_EQ(Exec(&loop, "DELTA s1 + R(a)*"), dup);
  EXPECT_EQ(Exec(&loop, "DELTA s1 + R(a,b)*"), bad_arity);
  EXPECT_EQ(Exec(&loop, "DELTA s1 + S(a,b)"), bad_atom_arity);
  EXPECT_EQ(Exec(&loop, "DELTA s1 - R(zzz)"), gone);
  EXPECT_EQ(loop.error_count(), 13u);
}

TEST(CommandLoopTest, ReportStatsCloseErrors) {
  CommandLoop loop = MakeLoop();
  EXPECT_NE(Exec(&loop, "REPORT").find("error: usage: REPORT"),
            std::string::npos);
  EXPECT_NE(Exec(&loop, "REPORT nosuch").find("no open session"),
            std::string::npos);
  Exec(&loop, "OPEN s1 q() :- R(x)");
  EXPECT_NE(Exec(&loop, "REPORT s1 --threads x").find("bad --threads"),
            std::string::npos);
  EXPECT_NE(Exec(&loop, "REPORT s1 bogus").find("unexpected argument"),
            std::string::npos);
  // Only one positional top_k is allowed; a second number is a stray token.
  EXPECT_NE(Exec(&loop, "REPORT s1 3 1").find("unexpected argument '1'"),
            std::string::npos);
  EXPECT_NE(Exec(&loop, "STATS nosuch").find("no open session"),
            std::string::npos);
  EXPECT_NE(Exec(&loop, "STATS s1 extra").find("error: usage: STATS"),
            std::string::npos);
  EXPECT_NE(Exec(&loop, "CLOSE nosuch").find("no open session"),
            std::string::npos);
  EXPECT_NE(Exec(&loop, "CLOSE").find("error: usage: CLOSE"),
            std::string::npos);
  EXPECT_NE(Exec(&loop, "FROB s1").find("unknown command 'FROB'"),
            std::string::npos);
  EXPECT_EQ(loop.error_count(), 10u);
}

TEST(CommandLoopTest, RunReturnsNonZeroOnErrors) {
  CommandLoop ok_loop = MakeLoop();
  std::istringstream good("OPEN s1 q() :- R(x)\nDELTA s1 + R(a)*\n");
  std::ostringstream good_out;
  EXPECT_EQ(ok_loop.Run(good, good_out), 0);

  CommandLoop bad_loop = MakeLoop();
  std::istringstream bad("OPEN s1 q() :- R(x)\nDELTA s1 + R(a\n");
  std::ostringstream bad_out;
  EXPECT_EQ(bad_loop.Run(bad, bad_out), 1);
  EXPECT_NE(bad_out.str().find("error:"), std::string::npos);
}

TEST(CommandLoopTest, CarriageReturnsAreTolerated) {
  // Session scripts written on Windows reach the loop with trailing '\r'.
  CommandLoop loop = MakeLoop();
  EXPECT_EQ(Exec(&loop, "OPEN s1 q() :- R(x)\r"),
            "> OPEN s1 q() :- R(x)\nok open s1\n");
  EXPECT_EQ(Exec(&loop, "DELTA s1 + R(a)*\r"),
            "> DELTA s1 + R(a)*\nok delta s1 facts=1 endo=1\n");
}

TEST(CommandLoopTest, OverlongLinesAreRejectedAndTheLoopContinues) {
  CommandLoopOptions options;
  options.max_line_bytes = 64;
  CommandLoop loop{options};
  Exec(&loop, "OPEN s1 q() :- R(x)");
  const std::string hostile(100, 'x');
  // The oversized line is refused without being echoed or parsed...
  EXPECT_EQ(Exec(&loop, hostile),
            "error: [E_LINE_TOO_LONG] input line of 100 bytes exceeds "
            "limit 64\n");
  // ...and the very next command works.
  EXPECT_EQ(Exec(&loop, "DELTA s1 + R(a)*"),
            "> DELTA s1 + R(a)*\nok delta s1 facts=1 endo=1\n");
  EXPECT_EQ(loop.error_count(), 1u);
}

TEST(CommandLoopTest, ReportArgumentParsingIsStrict) {
  CommandLoop loop = MakeLoop();
  Exec(&loop, "OPEN s1 q() :- R(x)");
  // A leading '+' is not a number (the old parser accepted "+5" via strtoul).
  EXPECT_NE(Exec(&loop, "REPORT s1 +5").find("unexpected argument '+5'"),
            std::string::npos);
  // 2^64: overflow must be detected, not silently saturated.
  EXPECT_NE(Exec(&loop, "REPORT s1 18446744073709551616")
                .find("unexpected argument '18446744073709551616'"),
            std::string::npos);
  EXPECT_NE(Exec(&loop, "REPORT s1 --threads 99999999999999999999")
                .find("bad --threads value '99999999999999999999'"),
            std::string::npos);
  EXPECT_NE(Exec(&loop, "REPORT s1 --threads -1")
                .find("bad --threads value '-1'"),
            std::string::npos);
  // In-range values still parse after the strictness change.
  EXPECT_NE(Exec(&loop, "REPORT s1 5 --threads 2").find("end report s1"),
            std::string::npos);
  EXPECT_EQ(loop.error_count(), 4u);
}

TEST(CommandLoopTest, DeltaAfterCloseIsAnError) {
  CommandLoop loop = MakeLoop();
  Exec(&loop, "OPEN s1 q() :- R(x)");
  Exec(&loop, "DELTA s1 + R(a)*");
  Exec(&loop, "CLOSE s1");
  EXPECT_EQ(Exec(&loop, "DELTA s1 + R(b)*"),
            "> DELTA s1 + R(b)*\nerror: delta s1: no open session s1\n");
  // The id is reusable: closing really forgot the session.
  EXPECT_NE(Exec(&loop, "OPEN s1 q() :- S(x)").find("ok open s1"),
            std::string::npos);
  EXPECT_EQ(loop.error_count(), 1u);
}

TEST(CommandLoopTest, EmptyAndCommentOnlyScriptsSucceed) {
  CommandLoop empty_loop = MakeLoop();
  std::istringstream empty("");
  std::ostringstream empty_out;
  EXPECT_EQ(empty_loop.Run(empty, empty_out), 0);
  EXPECT_EQ(empty_out.str(), "");

  CommandLoop comment_loop = MakeLoop();
  std::istringstream comments("# just\n\n  \t\n# comments\n");
  std::ostringstream comments_out;
  EXPECT_EQ(comment_loop.Run(comments, comments_out), 0);
  EXPECT_EQ(comments_out.str(), "");
}

TEST(CommandLoopTest, FactCapRejectsGrowthButAllowsDeletes) {
  CommandLoopOptions options;
  options.max_session_facts = 2;
  CommandLoop loop{options};
  Exec(&loop, "OPEN s1 q() :- R(x)");
  Exec(&loop, "DELTA s1 + R(a)*");
  Exec(&loop, "DELTA s1 + R(b)*");
  EXPECT_EQ(Exec(&loop, "DELTA s1 + R(c)*"),
            "> DELTA s1 + R(c)*\n"
            "error: [E_FACT_CAP] delta s1: session at fact cap 2\n");
  // Deletes are always allowed (the way back under the cap), and the freed
  // slot can be refilled.
  EXPECT_NE(Exec(&loop, "DELTA s1 - R(a)").find("ok delta s1 facts=1"),
            std::string::npos);
  EXPECT_NE(Exec(&loop, "DELTA s1 + R(c)*").find("ok delta s1 facts=2"),
            std::string::npos);
  EXPECT_EQ(loop.error_count(), 1u);
}

TEST(CommandLoopTest, SnapshotRequiresDurability) {
  CommandLoop loop = MakeLoop();
  Exec(&loop, "OPEN s1 q() :- R(x)");
  EXPECT_NE(Exec(&loop, "SNAPSHOT").find("error: usage: SNAPSHOT <session>"),
            std::string::npos);
  EXPECT_EQ(Exec(&loop, "SNAPSHOT s1"),
            "> SNAPSHOT s1\n"
            "error: snapshot s1: durability is off (no --log-dir)\n");
  EXPECT_EQ(loop.error_count(), 2u);
}

TEST(CommandLoopTest, MultipleSessionsAreIndependent) {
  CommandLoop loop = MakeLoop();
  Exec(&loop, "OPEN a q() :- R(x)");
  Exec(&loop, "OPEN b q() :- S(x), not T(x)");
  Exec(&loop, "DELTA a + R(one)*");
  Exec(&loop, "DELTA b + S(two)*");
  const std::string report_a = Exec(&loop, "REPORT a");
  const std::string report_b = Exec(&loop, "REPORT b");
  EXPECT_NE(report_a.find("R(one)*"), std::string::npos);
  EXPECT_EQ(report_a.find("S(two)*"), std::string::npos);
  EXPECT_NE(report_b.find("S(two)*"), std::string::npos);
  Exec(&loop, "CLOSE a");
  // b survives a's close.
  EXPECT_NE(Exec(&loop, "STATS b").find("facts=1"), std::string::npos);
  EXPECT_EQ(loop.error_count(), 0u);
}

// A streambuf that serves scripted chunks, failing with errno == EINTR
// between them — what a read interrupted by a signal without SA_RESTART
// looks like through an istream (eofbit/failbit set, errno left at EINTR).
// An optional stop flag is raised when the interrupt fires, modeling a
// shutdown signal arriving mid-read.
class InterruptingStreamBuf : public std::streambuf {
 public:
  static constexpr const char* kInterrupt = "\x01INTERRUPT";

  explicit InterruptingStreamBuf(std::vector<std::string> chunks,
                                 volatile std::sig_atomic_t* stop = nullptr)
      : chunks_(std::move(chunks)), stop_(stop) {}

 protected:
  int_type underflow() override {
    while (next_ < chunks_.size()) {
      const std::string chunk = chunks_[next_++];
      if (chunk == kInterrupt) {
        if (stop_ != nullptr) *stop_ = 1;
        errno = EINTR;
        return traits_type::eof();
      }
      current_ = chunk;
      setg(current_.data(), current_.data(),
           current_.data() + current_.size());
      if (!current_.empty()) return traits_type::to_int_type(*gptr());
    }
    return traits_type::eof();  // genuine EOF: errno untouched
  }

 private:
  std::vector<std::string> chunks_;
  std::string current_;
  size_t next_ = 0;
  volatile std::sig_atomic_t* stop_ = nullptr;
};

TEST(CommandLoopTest, RunRetriesInterruptedReadsWithoutDroppingInput) {
  // Regression: any failed getline used to read as EOF, so an EINTR from a
  // signal that was not a shutdown silently ended the session with exit 0.
  // Worse, an interrupt can split a line: the partial extraction must be
  // kept and completed on retry, never executed truncated.
  InterruptingStreamBuf buf({"OPEN s1 q() :- R(x)\nDELTA s1 + R(a)*\nST",
                             InterruptingStreamBuf::kInterrupt, "ATS s1\n",
                             InterruptingStreamBuf::kInterrupt,
                             "CLOSE s1\n"});
  std::istream in(&buf);
  std::ostringstream out;
  CommandLoop loop = MakeLoop();
  EXPECT_EQ(loop.Run(in, out), 0);
  const std::string output = out.str();
  EXPECT_NE(output.find("> STATS s1\n"), std::string::npos);
  EXPECT_NE(output.find("stats s1 facts=1"), std::string::npos);
  EXPECT_NE(output.find("ok close s1\n"), std::string::npos);
  // The split line executed exactly once, whole: no truncated "ST" echo.
  EXPECT_EQ(output.find("> ST\n"), std::string::npos);
  EXPECT_EQ(output.find("error:"), std::string::npos);
  EXPECT_EQ(loop.error_count(), 0u);
}

TEST(CommandLoopTest, RunStopsOnInterruptWhenStopFlagIsRaised) {
  // The same EINTR during shutdown must NOT retry: the loop drains. The
  // partial line read so far is dropped — the command never ran, so the
  // transcript must not show it.
  volatile std::sig_atomic_t stop = 0;
  InterruptingStreamBuf buf({"OPEN s1 q() :- R(x)\nCLO",
                             InterruptingStreamBuf::kInterrupt, "SE s1\n"},
                            &stop);
  std::istream in(&buf);
  std::ostringstream out;
  CommandLoop loop = MakeLoop();
  EXPECT_EQ(loop.Run(in, out, &stop), 0);
  const std::string output = out.str();
  EXPECT_NE(output.find("ok open s1\n"), std::string::npos);
  EXPECT_EQ(output.find("CLOSE"), std::string::npos);
  EXPECT_EQ(output.find("CLO"), std::string::npos);
  EXPECT_EQ(loop.error_count(), 0u);
}

TEST(CommandLoopTest, RunTreatsStaleEintrErrnoAsEof) {
  // errno is zeroed before each read: a stale EINTR from some earlier
  // syscall must not turn a genuine EOF into an infinite retry loop.
  errno = EINTR;
  std::istringstream in("OPEN s1 q() :- R(x)\n");
  std::ostringstream out;
  CommandLoop loop = MakeLoop();
  EXPECT_EQ(loop.Run(in, out), 0);
  EXPECT_NE(out.str().find("ok open s1\n"), std::string::npos);
}

TEST(CommandLoopTest, RunExecutesFinalUnterminatedLine) {
  std::istringstream in("OPEN s1 q() :- R(x)\nSTATS");
  std::ostringstream out;
  CommandLoop loop = MakeLoop();
  EXPECT_EQ(loop.Run(in, out), 0);
  EXPECT_NE(out.str().find("stats sessions=1"), std::string::npos);
}

TEST(CommandLoopTest, StatsBytesOffOmitsThePlatformDependentField) {
  CommandLoopOptions options;
  options.stats_show_bytes = false;
  CommandLoop loop(options);
  Exec(&loop, "OPEN s1 q() :- R(x)");
  Exec(&loop, "DELTA s1 + R(a)*");
  Exec(&loop, "REPORT s1");
  // Fully deterministic: every field survives except the byte estimate.
  EXPECT_EQ(Exec(&loop, "STATS"),
            "> STATS\n"
            "stats sessions=1 resident=1 hits=0 cached=0 cached_exact=1 "
            "cached_approx=0 misses=1 evictions=0 builds=1 inflight=0\n");

  CommandLoop exact = MakeLoop();
  Exec(&exact, "OPEN s1 q() :- R(x)");
  Exec(&exact, "DELTA s1 + R(a)*");
  Exec(&exact, "REPORT s1");
  EXPECT_NE(Exec(&exact, "STATS").find(" bytes="), std::string::npos);
}

TEST(CommandLoopTest, ApproxOnlySessionLifecycle) {
  // The acceptance story: a query the exact tier refuses (non-hierarchical,
  // previously answerable only with --brute-force) is served end to end
  // through the sampling tier.
  CommandLoop loop = MakeLoop();
  EXPECT_EQ(Exec(&loop, "OPEN s1 q() :- R(x,y), S(x), T(y)"),
            "> OPEN s1 q() :- R(x,y), S(x), T(y)\nok open s1 approx-only\n");
  Exec(&loop, "DELTA s1 + R(a,b)*");
  Exec(&loop, "DELTA s1 + S(a)*");
  Exec(&loop, "DELTA s1 + T(b)*");

  // An exact report names the classification and the way out.
  const std::string exact = Exec(&loop, "REPORT s1");
  EXPECT_NE(exact.find("error: report s1:"), std::string::npos);
  EXPECT_NE(exact.find("not hierarchical"), std::string::npos);
  EXPECT_NE(exact.find("approx=EPS,DELTA"), std::string::npos);

  const std::string approx = Exec(&loop, "REPORT s1 approx=0.1,0.05 seed=7");
  EXPECT_NE(approx.find("report s1 rows=3 endo=3\n"), std::string::npos);
  EXPECT_NE(approx.find("engine: approx-fpras\n"), std::string::npos);
  EXPECT_NE(approx.find("approx: eps=0.1 delta=0.05 seed=7"),
            std::string::npos);
  EXPECT_NE(approx.find("+-ci"), std::string::npos);
  EXPECT_NE(approx.find("end report s1\n"), std::string::npos);
  // Deterministic and cached: the identical request reproduces byte for
  // byte (this serve comes from the approx report cache).
  EXPECT_EQ(Exec(&loop, "REPORT s1 approx=0.1,0.05 seed=7"), approx);

  const std::string global = Exec(&loop, "STATS");
  EXPECT_NE(global.find(" approx=2"), std::string::npos);
  EXPECT_NE(global.find(" cached_approx=1"), std::string::npos);
  const std::string session = Exec(&loop, "STATS s1");
  EXPECT_NE(session.find(" resident=no"), std::string::npos);
  EXPECT_NE(session.find(" tier=approx-only"), std::string::npos);
  EXPECT_NE(session.find(" cached_approx=1"), std::string::npos);
  EXPECT_EQ(loop.error_count(), 1u);  // only the exact REPORT refusal
}

TEST(CommandLoopTest, StructuredReportRequestMatchesPositional) {
  CommandLoop loop = MakeLoop();
  Exec(&loop, "OPEN s1 q() :- R(x)");
  Exec(&loop, "DELTA s1 + R(a)*");
  Exec(&loop, "DELTA s1 + R(b)*");
  Exec(&loop, "DELTA s1 + R(c)*");
  // One grammar, two spellings: the structured form and the deprecated
  // positional form rank identically (only the echo line differs).
  const std::string structured = Exec(&loop, "REPORT s1 top_k=2 threads=2");
  const std::string positional = Exec(&loop, "REPORT s1 2 --threads 2");
  EXPECT_EQ(structured.substr(structured.find('\n') + 1),
            positional.substr(positional.find('\n') + 1));
  EXPECT_NE(structured.find("rows=2 endo=3"), std::string::npos);

  // Parse errors surface through the loop's error frame.
  EXPECT_NE(Exec(&loop, "REPORT s1 topk=2")
                .find("error: report s1: unknown key 'topk'"),
            std::string::npos);
  EXPECT_NE(Exec(&loop, "REPORT s1 seed=3")
                .find("require approx=EPS[,DELTA]"),
            std::string::npos);
  // force_approx=1 flips an exact-capable session onto the sampling tier.
  const std::string forced =
      Exec(&loop, "REPORT s1 approx=0.2,0.05 force_approx=1");
  EXPECT_NE(forced.find("engine: approx-fpras\n"), std::string::npos);
  EXPECT_EQ(loop.error_count(), 2u);
}

TEST(CommandLoopTest, SharedModeLoopsSeeOneRegistry) {
  // Two connection loops over one registry: a session opened through one
  // is visible (and mutable) through the other — the socket server's
  // sharing model.
  CommandLoopOptions options;
  EngineRegistry registry(options.registry);
  CommandLoop a(options, &registry, nullptr);
  CommandLoop b(options, &registry, nullptr);
  EXPECT_EQ(Exec(&a, "OPEN s1 q() :- R(x)"),
            "> OPEN s1 q() :- R(x)\nok open s1\n");
  EXPECT_EQ(Exec(&b, "DELTA s1 + R(a)*"),
            "> DELTA s1 + R(a)*\nok delta s1 facts=1 endo=1\n");
  EXPECT_NE(Exec(&a, "REPORT s1").find("rows=1 endo=1"), std::string::npos);
  EXPECT_EQ(Exec(&b, "OPEN s1 q() :- R(x)"),
            "> OPEN s1 q() :- R(x)\n"
            "error: open s1: session s1 is already open\n");
  EXPECT_EQ(a.error_count(), 0u);
  EXPECT_EQ(b.error_count(), 1u);
}

}  // namespace
}  // namespace shapcq
