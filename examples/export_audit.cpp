// Trade-audit scenario from the paper's introduction: which export records
// drive the observation "some farmer exports a product to a country where it
// does not grow"? Demonstrates:
//   * the Boolean query q() :- Farmer(m), Export(m,p,c), ¬Grows(c,p),
//   * why it is FP^#P-hard in general but tractable once Grows is declared
//     exogenous (Theorem 4.3),
//   * the aggregate Count{ c | ... } attributed to facts by linearity.
//
//   $ ./example_export_audit

#include <algorithm>
#include <cstdio>
#include <vector>

#include "shapcq.h"
#include "core/aggregate.h"
#include "datasets/exports.h"

int main() {
  using namespace shapcq;

  // A season of trade data: who exports what where, and what grows where.
  // Farmer records come from the registry (exogenous); Export rows come from
  // scanned customs forms (endogenous — possibly wrong, we audit them);
  // Grows is agronomic reference data (exogenous).
  Database db;
  db.AddExo("Farmer", {V("Miller")});
  db.AddExo("Farmer", {V("Sato")});
  db.AddExo("Farmer", {V("Okafor")});
  db.AddEndo("Export", {V("Miller"), V("wheat"), V("JP")});
  db.AddEndo("Export", {V("Miller"), V("wheat"), V("BR")});
  db.AddEndo("Export", {V("Sato"), V("rice"), V("FR")});
  db.AddEndo("Export", {V("Sato"), V("tea"), V("FR")});
  db.AddEndo("Export", {V("Okafor"), V("cocoa"), V("JP")});
  db.AddExo("Grows", {V("JP"), V("wheat")});
  db.AddExo("Grows", {V("BR"), V("wheat")});
  db.AddExo("Grows", {V("FR"), V("rice")});
  // Note: tea does not grow in FR, cocoa does not grow in JP.

  const CQ q = ExportQuery();
  std::printf("query: %s\n\n", q.ToString().c_str());

  // The dichotomies: hard in general, easy with exogenous Grows.
  std::printf("Theorem 3.1 (no exogenous knowledge): %s\n",
              ClassifyExactShapley(q).value().reason.c_str());
  std::printf("Theorem 4.3 (Grows exogenous):        %s\n\n",
              ClassifyExactShapley(q, {"Grows"}).value().reason.c_str());

  // Exact Shapley values through ExoShap.
  struct Row {
    FactId fact;
    Rational value;
  };
  std::vector<Row> rows;
  for (FactId f : db.endogenous_facts()) {
    rows.push_back({f, ExoShapShapley(q, db, {"Grows"}, f).value()});
  }
  std::sort(rows.begin(), rows.end(), [](const Row& a, const Row& b) {
    return b.value < a.value;
  });
  std::printf("%-32s %10s  %s\n", "export record", "Shapley", "~decimal");
  for (const Row& row : rows) {
    std::printf("%-32s %10s  %8.4f\n", db.FactToString(row.fact).c_str(),
                row.value.ToString().c_str(), row.value.ToDouble());
  }

  // The aggregate from the introduction: how many countries import a product
  // they do not grow — attributed to each record.
  AggregateQuery agg = ExportCountAggregate();
  std::printf("\naggregate: Count{ c | Farmer(m), Export(m,p,c), "
              "not Grows(c,p) }\n");
  std::printf("%-32s %10s\n", "export record", "Shapley");
  for (FactId f : db.endogenous_facts()) {
    const Rational value = ShapleyAggregate(agg, db, f, {"Farmer"}).value();
    std::printf("%-32s %10s\n", db.FactToString(f).c_str(),
                value.ToString().c_str());
  }
  return 0;
}
