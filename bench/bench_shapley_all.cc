// All-facts exact Shapley: the single-pass ShapleyEngine against the
// per-fact CntSat loop it replaces. The engine builds the matched-fact index
// and the recursion tree once and re-evaluates only a root-to-leaf path per
// fact (one path per symmetry orbit), so the gap widens with |Dn|; the
// per-fact loop re-runs the whole recursion twice per fact.
//
// Arg = students in the q1-shaped scaling database (endo = 3s + ceil(s/2)):
// s = 20 crosses the endo >= 64 threshold tracked in BENCH_shapley.json.

#include <benchmark/benchmark.h>

#include "core/shapley.h"
#include "core/shapley_engine.h"
#include "datasets/synthetic.h"
#include "datasets/university.h"

namespace {

using namespace shapcq;

void BM_EngineAllFacts(benchmark::State& state) {
  const CQ q = UniversityQ1();
  const Database db =
      BuildStudentScalingDb(static_cast<int>(state.range(0)), 3);
  for (auto _ : state) {
    ShapleyEngine engine = std::move(ShapleyEngine::Build(q, db)).value();
    benchmark::DoNotOptimize(engine.AllValues());
  }
  state.SetLabel("endo=" + std::to_string(db.endogenous_count()));
}
BENCHMARK(BM_EngineAllFacts)->Arg(4)->Arg(8)->Arg(16)->Arg(20)->Arg(32);

void BM_PerFactCountSatLoop(benchmark::State& state) {
  // The pre-engine ShapleyAllViaCountSat: one ShapleyViaCountSat call (two
  // full CntSat runs over copied databases) per endogenous fact.
  const CQ q = UniversityQ1();
  const Database db =
      BuildStudentScalingDb(static_cast<int>(state.range(0)), 3);
  for (auto _ : state) {
    std::vector<Rational> values;
    values.reserve(db.endogenous_count());
    for (FactId f : db.endogenous_facts()) {
      values.push_back(ShapleyViaCountSat(q, db, f).value());
    }
    benchmark::DoNotOptimize(values);
  }
  state.SetLabel("endo=" + std::to_string(db.endogenous_count()));
}
BENCHMARK(BM_PerFactCountSatLoop)->Arg(4)->Arg(8)->Arg(16)->Arg(20)->Arg(32);

void BM_EngineBuildOnly(benchmark::State& state) {
  // The shared index + memoized tree, without any value queries: the fixed
  // cost one baseline CntSat-equivalent pass pays.
  const CQ q = UniversityQ1();
  const Database db =
      BuildStudentScalingDb(static_cast<int>(state.range(0)), 3);
  for (auto _ : state) {
    benchmark::DoNotOptimize(ShapleyEngine::Build(q, db).value());
  }
  state.SetLabel("endo=" + std::to_string(db.endogenous_count()));
}
BENCHMARK(BM_EngineBuildOnly)->Arg(8)->Arg(20)->Arg(32);

}  // namespace

BENCHMARK_MAIN();
