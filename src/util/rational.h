// Exact rational numbers over BigInt.
//
// Shapley values of database facts are rationals with factorial denominators
// (e.g. -3/28, 37/210 in the paper's running example); exact rationals let the
// test suite compare against the paper's numbers verbatim.

#ifndef SHAPCQ_UTIL_RATIONAL_H_
#define SHAPCQ_UTIL_RATIONAL_H_

#include <iosfwd>
#include <string>

#include "util/bigint.h"

namespace shapcq {

/// Exact rational number, always stored in lowest terms with a positive
/// denominator.
class Rational {
 public:
  /// Zero.
  Rational() : numerator_(0), denominator_(1) {}
  /// Integer value.
  Rational(int64_t value) : numerator_(value), denominator_(1) {}  // NOLINT
  /// Integer value.
  Rational(BigInt value) : numerator_(std::move(value)), denominator_(1) {}  // NOLINT
  /// numerator/denominator; reduced on construction. Aborts if denominator
  /// is zero.
  Rational(BigInt numerator, BigInt denominator);
  /// Convenience for small literals, e.g. Rational::Of(-3, 28).
  static Rational Of(int64_t numerator, int64_t denominator);
  /// Parses "a/b" or "a". Returns false on malformed input.
  static bool TryParse(const std::string& text, Rational* out);

  const BigInt& numerator() const { return numerator_; }
  const BigInt& denominator() const { return denominator_; }
  bool IsZero() const { return numerator_.IsZero(); }
  int sign() const { return numerator_.sign(); }

  /// Approximate memory footprint in bytes (object plus owned limb storage).
  /// Feeds the byte-budgeted LRU accounting of the serving layer.
  size_t ApproxMemoryBytes() const {
    return numerator_.ApproxMemoryBytes() + denominator_.ApproxMemoryBytes();
  }

  Rational operator-() const;
  Rational Abs() const;
  Rational operator+(const Rational& other) const;
  Rational operator-(const Rational& other) const;
  Rational operator*(const Rational& other) const;
  /// Aborts on division by zero.
  Rational operator/(const Rational& other) const;
  Rational& operator+=(const Rational& other) { return *this = *this + other; }
  Rational& operator-=(const Rational& other) { return *this = *this - other; }
  Rational& operator*=(const Rational& other) { return *this = *this * other; }
  Rational& operator/=(const Rational& other) { return *this = *this / other; }

  /// Three-way comparison: -1, 0, +1 for a <=> b. Division-free: the signs
  /// decide first (no arithmetic at all when they differ or both are zero),
  /// otherwise the cross products a.num*b.den vs b.num*a.den are compared —
  /// no difference Rational (and hence no gcd normalization) is ever
  /// materialized. This is what report ranking sorts with.
  static int Compare(const Rational& a, const Rational& b);

  bool operator==(const Rational& other) const;
  bool operator!=(const Rational& other) const { return !(*this == other); }
  bool operator<(const Rational& other) const;
  bool operator<=(const Rational& other) const { return !(other < *this); }
  bool operator>(const Rational& other) const { return other < *this; }
  bool operator>=(const Rational& other) const { return !(*this < other); }

  /// "a/b", or just "a" when the denominator is 1.
  std::string ToString() const;
  /// Nearest double; computed via a scaled quotient so values whose numerator
  /// and denominator separately overflow double (factorials) still convert.
  double ToDouble() const;

 private:
  void Reduce();

  BigInt numerator_;
  BigInt denominator_;  // always positive
};

std::ostream& operator<<(std::ostream& os, const Rational& value);

}  // namespace shapcq

#endif  // SHAPCQ_UTIL_RATIONAL_H_
