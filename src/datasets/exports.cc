#include "datasets/exports.h"

#include "query/parser.h"

namespace shapcq {

CQ ExportQuery() {
  return MustParseCQ("q() :- Farmer(m), Export(m,p,c), not Grows(c,p)");
}

AggregateQuery ExportCountAggregate() {
  AggregateQuery agg;
  agg.cq = MustParseCQ("qc(c) :- Farmer(m), Export(m,p,c), not Grows(c,p)");
  agg.kind = AggregateQuery::Kind::kCount;
  return agg;
}

Database BuildSmallExportDb() {
  Database db;
  const Value ana = V("Ana"), bo = V("Bo");
  const Value rice = V("rice"), cocoa = V("cocoa");
  const Value fr = V("FR"), jp = V("JP");

  db.AddExo("Farmer", {ana});
  db.AddExo("Farmer", {bo});
  db.AddEndo("Export", {ana, rice, fr});
  db.AddEndo("Export", {ana, cocoa, jp});
  db.AddEndo("Export", {bo, rice, jp});
  db.AddEndo("Grows", {jp, rice});
  db.AddEndo("Grows", {fr, rice});
  db.AddExo("Grows", {jp, cocoa});
  return db;
}

Database BuildRandomExportDb(int farmers, int products, int countries,
                             int exports_each, double grow_probability,
                             Rng* rng) {
  Database db;
  auto farmer = [](int i) { return V("farmer" + std::to_string(i)); };
  auto product = [](int i) { return V("product" + std::to_string(i)); };
  auto country = [](int i) { return V("country" + std::to_string(i)); };

  for (int f = 0; f < farmers; ++f) db.AddExo("Farmer", {farmer(f)});
  for (int f = 0; f < farmers; ++f) {
    for (int e = 0; e < exports_each; ++e) {
      const Value p =
          product(static_cast<int>(rng->UniformInt(products)));
      const Value c =
          country(static_cast<int>(rng->UniformInt(countries)));
      db.AddFactIfAbsent("Export", {farmer(f), p, c}, /*endogenous=*/true);
    }
  }
  for (int c = 0; c < countries; ++c) {
    for (int p = 0; p < products; ++p) {
      if (rng->Bernoulli(grow_probability)) {
        db.AddEndo("Grows", {country(c), product(p)});
      }
    }
  }
  return db;
}

}  // namespace shapcq
