#include "query/analysis.h"

#include <algorithm>
#include <deque>
#include <functional>
#include <set>
#include <unordered_map>

#include "util/check.h"

namespace shapcq {

namespace {

// Is a ⊆ b for sorted vectors?
bool IsSubset(const std::vector<size_t>& a, const std::vector<size_t>& b) {
  return std::includes(b.begin(), b.end(), a.begin(), a.end());
}

bool Intersects(const std::vector<size_t>& a, const std::vector<size_t>& b) {
  size_t i = 0, j = 0;
  while (i < a.size() && j < b.size()) {
    if (a[i] == b[j]) return true;
    if (a[i] < b[j]) {
      ++i;
    } else {
      ++j;
    }
  }
  return false;
}

}  // namespace

std::vector<std::vector<size_t>> AtomsOfVars(const CQ& q) {
  std::vector<std::vector<size_t>> result(q.var_count());
  for (size_t i = 0; i < q.atom_count(); ++i) {
    for (VarId var : q.atom(i).Variables()) {
      result[static_cast<size_t>(var)].push_back(i);
    }
  }
  return result;
}

bool IsSafe(const CQ& q) {
  std::vector<bool> in_positive(q.var_count(), false);
  for (const Atom& atom : q.atoms()) {
    if (atom.negated) continue;
    for (VarId var : atom.Variables()) {
      in_positive[static_cast<size_t>(var)] = true;
    }
  }
  for (const Atom& atom : q.atoms()) {
    if (!atom.negated) continue;
    for (VarId var : atom.Variables()) {
      if (!in_positive[static_cast<size_t>(var)]) return false;
    }
  }
  for (VarId var : q.head()) {
    if (!in_positive[static_cast<size_t>(var)]) return false;
  }
  return true;
}

bool IsSelfJoinFree(const CQ& q) {
  std::set<std::string> seen;
  for (const Atom& atom : q.atoms()) {
    if (!seen.insert(atom.relation).second) return false;
  }
  return true;
}

bool IsHierarchical(const CQ& q) {
  return !FindNonHierarchicalTriplet(q).has_value();
}

std::optional<NonHierarchicalTriplet> FindNonHierarchicalTriplet(const CQ& q) {
  const auto atoms_of = AtomsOfVars(q);
  const std::vector<VarId> vars = q.UsedVars();
  for (VarId x : vars) {
    for (VarId y : vars) {
      if (x >= y) continue;
      const auto& ax = atoms_of[static_cast<size_t>(x)];
      const auto& ay = atoms_of[static_cast<size_t>(y)];
      if (!Intersects(ax, ay)) continue;
      if (IsSubset(ax, ay) || IsSubset(ay, ax)) continue;
      NonHierarchicalTriplet triplet;
      triplet.x = x;
      triplet.y = y;
      for (size_t a : ax) {
        if (!std::binary_search(ay.begin(), ay.end(), a)) {
          triplet.alpha_x = a;
          break;
        }
      }
      for (size_t a : ay) {
        if (!std::binary_search(ax.begin(), ax.end(), a)) {
          triplet.alpha_y = a;
          break;
        }
      }
      for (size_t a : ax) {
        if (std::binary_search(ay.begin(), ay.end(), a)) {
          triplet.alpha_xy = a;
          break;
        }
      }
      return triplet;
    }
  }
  return std::nullopt;
}

std::optional<NonHierarchicalTriplet> FindReductionTriplet(const CQ& q) {
  const auto atoms_of = AtomsOfVars(q);
  const std::vector<VarId> vars = q.UsedVars();
  // Enumerate all triplets; accept the polarity signatures that map onto one
  // of the base queries q_RST, q_¬RS¬T, q_R¬ST, q_RS¬T: the middle atom is
  // positive, or the middle atom is negative with both endpoints positive.
  // Lemma B.4 shows such a triplet exists in every safe non-hierarchical CQ¬.
  for (VarId x : vars) {
    for (VarId y : vars) {
      if (x == y) continue;
      const auto& ax_set = atoms_of[static_cast<size_t>(x)];
      const auto& ay_set = atoms_of[static_cast<size_t>(y)];
      for (size_t ax : ax_set) {
        if (std::binary_search(ay_set.begin(), ay_set.end(), ax)) continue;
        for (size_t ay : ay_set) {
          if (std::binary_search(ax_set.begin(), ax_set.end(), ay)) continue;
          for (size_t axy : ax_set) {
            if (!std::binary_search(ay_set.begin(), ay_set.end(), axy)) {
              continue;
            }
            const bool middle_neg = q.atom(axy).negated;
            const bool end_neg =
                q.atom(ax).negated || q.atom(ay).negated;
            if (!middle_neg || !end_neg) {
              return NonHierarchicalTriplet{ax, axy, ay, x, y};
            }
          }
        }
      }
    }
  }
  return std::nullopt;
}

std::vector<std::vector<bool>> GaifmanAdjacency(const CQ& q) {
  const size_t n = q.var_count();
  std::vector<std::vector<bool>> adj(n, std::vector<bool>(n, false));
  for (const Atom& atom : q.atoms()) {
    const std::vector<VarId> vars = atom.Variables();
    for (size_t i = 0; i < vars.size(); ++i) {
      for (size_t j = i + 1; j < vars.size(); ++j) {
        adj[static_cast<size_t>(vars[i])][static_cast<size_t>(vars[j])] = true;
        adj[static_cast<size_t>(vars[j])][static_cast<size_t>(vars[i])] = true;
      }
    }
  }
  return adj;
}

bool IsExogenousAtom(const CQ& q, size_t atom_index, const ExoRelations& exo) {
  return exo.count(q.atom(atom_index).relation) > 0;
}

std::vector<VarId> ExogenousVars(const CQ& q, const ExoRelations& exo) {
  std::vector<bool> in_non_exo(q.var_count(), false);
  std::vector<bool> used(q.var_count(), false);
  for (size_t i = 0; i < q.atom_count(); ++i) {
    const bool is_exo = IsExogenousAtom(q, i, exo);
    for (VarId var : q.atom(i).Variables()) {
      used[static_cast<size_t>(var)] = true;
      if (!is_exo) in_non_exo[static_cast<size_t>(var)] = true;
    }
  }
  std::vector<VarId> result;
  for (size_t v = 0; v < used.size(); ++v) {
    if (used[v] && !in_non_exo[v]) result.push_back(static_cast<VarId>(v));
  }
  return result;
}

std::vector<std::vector<size_t>> ExogenousAtomComponents(
    const CQ& q, const ExoRelations& exo) {
  std::vector<size_t> exo_atoms;
  for (size_t i = 0; i < q.atom_count(); ++i) {
    if (IsExogenousAtom(q, i, exo)) exo_atoms.push_back(i);
  }
  const std::vector<VarId> exo_vars = ExogenousVars(q, exo);
  std::set<VarId> exo_var_set(exo_vars.begin(), exo_vars.end());

  // Union-find over positions in exo_atoms.
  std::vector<size_t> parent(exo_atoms.size());
  for (size_t i = 0; i < parent.size(); ++i) parent[i] = i;
  std::function<size_t(size_t)> find = [&](size_t a) {
    while (parent[a] != a) {
      parent[a] = parent[parent[a]];
      a = parent[a];
    }
    return a;
  };
  for (size_t i = 0; i < exo_atoms.size(); ++i) {
    for (size_t j = i + 1; j < exo_atoms.size(); ++j) {
      // Edge iff the two atoms share an exogenous variable.
      bool share = false;
      for (VarId var : q.atom(exo_atoms[i]).Variables()) {
        if (exo_var_set.count(var) && q.atom(exo_atoms[j]).Uses(var)) {
          share = true;
          break;
        }
      }
      if (share) parent[find(i)] = find(j);
    }
  }
  std::unordered_map<size_t, std::vector<size_t>> groups;
  for (size_t i = 0; i < exo_atoms.size(); ++i) {
    groups[find(i)].push_back(exo_atoms[i]);
  }
  std::vector<std::vector<size_t>> components;
  for (auto& [root, members] : groups) components.push_back(members);
  // Deterministic order: by smallest atom index.
  std::sort(components.begin(), components.end());
  return components;
}

std::optional<NonHierarchicalPath> FindNonHierarchicalPath(
    const CQ& q, const ExoRelations& exo) {
  const auto adj = GaifmanAdjacency(q);
  const size_t n = q.var_count();
  for (size_t ax = 0; ax < q.atom_count(); ++ax) {
    if (IsExogenousAtom(q, ax, exo)) continue;
    for (size_t ay = 0; ay < q.atom_count(); ++ay) {
      if (ay == ax || IsExogenousAtom(q, ay, exo)) continue;
      const std::vector<VarId> vars_x = q.atom(ax).Variables();
      const std::vector<VarId> vars_y = q.atom(ay).Variables();
      for (VarId x : vars_x) {
        if (q.atom(ay).Uses(x)) continue;
        for (VarId y : vars_y) {
          if (q.atom(ax).Uses(y)) continue;
          // Delete all variables of α_x, α_y except x and y; BFS x -> y.
          std::vector<bool> removed(n, false);
          for (VarId v : vars_x) removed[static_cast<size_t>(v)] = true;
          for (VarId v : vars_y) removed[static_cast<size_t>(v)] = true;
          removed[static_cast<size_t>(x)] = false;
          removed[static_cast<size_t>(y)] = false;
          std::vector<VarId> prev(n, -2);
          std::deque<VarId> queue{x};
          prev[static_cast<size_t>(x)] = -1;
          while (!queue.empty()) {
            VarId cur = queue.front();
            queue.pop_front();
            if (cur == y) break;
            for (size_t next = 0; next < n; ++next) {
              if (removed[next] || prev[next] != -2 ||
                  !adj[static_cast<size_t>(cur)][next]) {
                continue;
              }
              prev[next] = cur;
              queue.push_back(static_cast<VarId>(next));
            }
          }
          if (prev[static_cast<size_t>(y)] == -2) continue;
          NonHierarchicalPath witness;
          witness.alpha_x = ax;
          witness.alpha_y = ay;
          witness.x = x;
          witness.y = y;
          for (VarId v = y; v != -1; v = prev[static_cast<size_t>(v)]) {
            witness.path.push_back(v);
          }
          std::reverse(witness.path.begin(), witness.path.end());
          return witness;
        }
      }
    }
  }
  return std::nullopt;
}

bool IsRelationPolarityConsistent(const CQ& q, const std::string& relation) {
  bool positive = false, negative = false;
  for (const Atom& atom : q.atoms()) {
    if (atom.relation != relation) continue;
    (atom.negated ? negative : positive) = true;
  }
  return !(positive && negative);
}

bool IsRelationPolarityConsistent(const UCQ& q, const std::string& relation) {
  bool positive = false, negative = false;
  for (const CQ& disjunct : q.disjuncts()) {
    for (const Atom& atom : disjunct.atoms()) {
      if (atom.relation != relation) continue;
      (atom.negated ? negative : positive) = true;
    }
  }
  return !(positive && negative);
}

bool IsPolarityConsistent(const CQ& q) {
  for (const Atom& atom : q.atoms()) {
    if (!IsRelationPolarityConsistent(q, atom.relation)) return false;
  }
  return true;
}

bool IsPolarityConsistent(const UCQ& q) {
  for (const CQ& disjunct : q.disjuncts()) {
    for (const Atom& atom : disjunct.atoms()) {
      if (!IsRelationPolarityConsistent(q, atom.relation)) return false;
    }
  }
  return true;
}

bool IsPositivelyConnected(const CQ& q) {
  const std::vector<VarId> vars = q.UsedVars();
  if (vars.size() <= 1) return true;
  const size_t n = q.var_count();
  std::vector<std::vector<bool>> adj(n, std::vector<bool>(n, false));
  for (const Atom& atom : q.atoms()) {
    if (atom.negated) continue;
    const std::vector<VarId> atom_vars = atom.Variables();
    for (size_t i = 0; i < atom_vars.size(); ++i) {
      for (size_t j = i + 1; j < atom_vars.size(); ++j) {
        adj[static_cast<size_t>(atom_vars[i])]
           [static_cast<size_t>(atom_vars[j])] = true;
        adj[static_cast<size_t>(atom_vars[j])]
           [static_cast<size_t>(atom_vars[i])] = true;
      }
    }
  }
  std::vector<bool> reached(n, false);
  std::deque<VarId> queue{vars[0]};
  reached[static_cast<size_t>(vars[0])] = true;
  while (!queue.empty()) {
    VarId cur = queue.front();
    queue.pop_front();
    for (size_t next = 0; next < n; ++next) {
      if (!reached[next] && adj[static_cast<size_t>(cur)][next]) {
        reached[next] = true;
        queue.push_back(static_cast<VarId>(next));
      }
    }
  }
  for (VarId var : vars) {
    if (!reached[static_cast<size_t>(var)]) return false;
  }
  return true;
}

bool HasConstants(const CQ& q) {
  for (const Atom& atom : q.atoms()) {
    for (const Term& term : atom.terms) {
      if (term.IsConst()) return true;
    }
  }
  return false;
}

std::vector<std::vector<size_t>> AtomComponents(const CQ& q) {
  const size_t n = q.atom_count();
  std::vector<size_t> parent(n);
  for (size_t i = 0; i < n; ++i) parent[i] = i;
  std::function<size_t(size_t)> find = [&](size_t a) {
    while (parent[a] != a) {
      parent[a] = parent[parent[a]];
      a = parent[a];
    }
    return a;
  };
  for (size_t i = 0; i < n; ++i) {
    for (size_t j = i + 1; j < n; ++j) {
      bool share = false;
      for (VarId var : q.atom(i).Variables()) {
        if (q.atom(j).Uses(var)) {
          share = true;
          break;
        }
      }
      if (share) parent[find(i)] = find(j);
    }
  }
  std::unordered_map<size_t, std::vector<size_t>> groups;
  for (size_t i = 0; i < n; ++i) groups[find(i)].push_back(i);
  std::vector<std::vector<size_t>> components;
  for (auto& [root, members] : groups) components.push_back(members);
  std::sort(components.begin(), components.end());
  return components;
}

std::optional<VarId> FindRootVariable(const CQ& q) {
  for (VarId var : q.UsedVars()) {
    bool in_all = true;
    for (const Atom& atom : q.atoms()) {
      if (!atom.Uses(var)) {
        in_all = false;
        break;
      }
    }
    if (in_all) return var;
  }
  return std::nullopt;
}

}  // namespace shapcq
