#include "util/combinatorics.h"

#include "util/check.h"

namespace shapcq {

std::vector<BigInt>& Combinatorics::FactorialCache() {
  static std::vector<BigInt>* cache = new std::vector<BigInt>{BigInt(1)};
  return *cache;
}

BigInt Combinatorics::Factorial(size_t n) {
  std::vector<BigInt>& cache = FactorialCache();
  while (cache.size() <= n) {
    cache.push_back(cache.back() * BigInt(static_cast<int64_t>(cache.size())));
  }
  return cache[n];
}

BigInt Combinatorics::Binomial(size_t n, size_t k) {
  if (k > n) return BigInt(0);
  // Serve from the row cache when the row is already materialized (don't
  // build an O(n^2) cache for a point query, though).
  const auto& rows = BinomialRowCache();
  if (n < rows.size()) return rows[n][k];
  // Use the smaller symmetric index and a running product; exact because the
  // intermediate product i steps in is divisible by i!.
  if (k > n - k) k = n - k;
  BigInt result(1);
  for (size_t i = 1; i <= k; ++i) {
    result *= BigInt(static_cast<int64_t>(n - k + i));
    result /= BigInt(static_cast<int64_t>(i));
  }
  return result;
}

std::vector<std::vector<BigInt>>& Combinatorics::BinomialRowCache() {
  static std::vector<std::vector<BigInt>>* cache =
      new std::vector<std::vector<BigInt>>{{BigInt(1)}};
  return *cache;
}

std::vector<BigInt> Combinatorics::BinomialRow(size_t n) {
  std::vector<std::vector<BigInt>>& cache = BinomialRowCache();
  while (cache.size() <= n) {
    // Pascal's rule from the previous row: additions only, no division.
    const std::vector<BigInt>& prev = cache.back();
    std::vector<BigInt> row;
    row.reserve(prev.size() + 1);
    row.push_back(BigInt(1));
    for (size_t k = 1; k < prev.size(); ++k) {
      row.push_back(prev[k - 1] + prev[k]);
    }
    row.push_back(BigInt(1));
    cache.push_back(std::move(row));
  }
  return cache[n];
}

}  // namespace shapcq
