#include "service/report_request.h"

#include <cctype>
#include <cmath>
#include <cstdlib>
#include <optional>
#include <set>
#include <vector>

#include "db/textio.h"

namespace shapcq {

namespace {

// Whitespace-splits `text` (the same tokenization the command loop uses).
std::vector<std::string> Tokenize(const std::string& text) {
  std::vector<std::string> tokens;
  size_t i = 0;
  while (i < text.size()) {
    while (i < text.size() &&
           std::isspace(static_cast<unsigned char>(text[i]))) {
      ++i;
    }
    size_t start = i;
    while (i < text.size() &&
           !std::isspace(static_cast<unsigned char>(text[i]))) {
      ++i;
    }
    if (i > start) tokens.push_back(text.substr(start, i - start));
  }
  return tokens;
}

// Strict positive-decimal double: digits, '.', 'e' notation, nothing else —
// no sign, no whitespace, no hex/inf/nan (mirrors ParseSizeStrict's rigor
// for the integer keys).
bool ParseDoubleStrict(const std::string& text, double* out) {
  if (text.empty()) return false;
  const char first = text[0];
  if (!std::isdigit(static_cast<unsigned char>(first)) && first != '.') {
    return false;
  }
  // strtod would happily take hex floats ("0x1p-3"); the grammar does not.
  if (text.find('x') != std::string::npos ||
      text.find('X') != std::string::npos) {
    return false;
  }
  char* end = nullptr;
  const double value = std::strtod(text.c_str(), &end);
  if (end != text.c_str() + text.size()) return false;
  if (!std::isfinite(value)) return false;
  *out = value;
  return true;
}

// The deprecated positional grammar "[top_k] [--threads N]", with the
// original PR 4 error strings byte-for-byte (the golden transcripts and the
// protocol tests pin them).
Result<ReportRequest> ParsePositional(const std::vector<std::string>& tokens,
                                      ReportRequest request) {
  using R = Result<ReportRequest>;
  request.deprecated_form = !tokens.empty();
  bool top_k_seen = false;
  for (size_t i = 0; i < tokens.size(); ++i) {
    if (tokens[i] == "--threads") {
      const std::string value = i + 1 < tokens.size() ? tokens[i + 1] : "";
      if (!ParseSizeStrict(value, &request.threads)) {
        return R::Error("bad --threads value '" + value + "'");
      }
      ++i;
    } else if (!top_k_seen && ParseSizeStrict(tokens[i], &request.top_k)) {
      top_k_seen = true;
    } else {
      return R::Error("unexpected argument '" + tokens[i] + "'");
    }
  }
  return R::Ok(std::move(request));
}

}  // namespace

Result<ReportRequest> ParseReportRequest(const std::string& args,
                                         size_t default_threads) {
  using R = Result<ReportRequest>;
  ReportRequest request;
  request.threads = default_threads;

  const std::vector<std::string> tokens = Tokenize(args);
  bool structured = false;
  for (const std::string& token : tokens) {
    if (token.find('=') != std::string::npos) {
      structured = true;
      break;
    }
  }
  if (!structured) return ParsePositional(tokens, std::move(request));

  std::set<std::string> seen;
  for (const std::string& token : tokens) {
    const size_t eq = token.find('=');
    if (eq == std::string::npos || eq == 0) {
      return R::Error("expected key=value argument, got '" + token + "'");
    }
    const std::string key = token.substr(0, eq);
    const std::string value = token.substr(eq + 1);
    if (!seen.insert(key).second) {
      return R::Error("duplicate key '" + key + "'");
    }
    if (key == "top_k") {
      if (!ParseSizeStrict(value, &request.top_k)) {
        return R::Error("bad top_k value '" + value + "'");
      }
    } else if (key == "threads") {
      if (!ParseSizeStrict(value, &request.threads)) {
        return R::Error("bad threads value '" + value + "'");
      }
    } else if (key == "approx") {
      const size_t comma = value.find(',');
      const std::string eps_text = value.substr(0, comma);
      double epsilon = 0.0;
      double delta = 0.05;
      bool ok = ParseDoubleStrict(eps_text, &epsilon);
      if (ok && comma != std::string::npos) {
        ok = ParseDoubleStrict(value.substr(comma + 1), &delta);
      }
      if (ok) {
        request.approx.epsilon = epsilon;
        request.approx.delta = delta;
        ok = request.approx.Validate().ok();
      }
      if (!ok) {
        return R::Error("bad approx value '" + value +
                        "' (expected EPS,DELTA with 0<EPS<1 and 0<DELTA<1)");
      }
    } else if (key == "seed") {
      size_t seed = 0;
      if (!ParseSizeStrict(value, &seed)) {
        return R::Error("bad seed value '" + value + "'");
      }
      request.approx.seed = seed;
    } else if (key == "max_samples") {
      if (!ParseSizeStrict(value, &request.approx.max_samples)) {
        return R::Error("bad max_samples value '" + value + "'");
      }
    } else if (key == "force_approx") {
      if (value == "1") {
        request.approx.force = true;
      } else if (value == "0") {
        request.approx.force = false;
      } else {
        return R::Error("bad force_approx value '" + value +
                        "' (expected 0 or 1)");
      }
    } else if (key == "engine") {
      const std::optional<EngineCore> core = ParseEngineCore(value);
      if (!core.has_value()) {
        return R::Error("bad engine value '" + value +
                        "' (expected arena or tree)");
      }
      request.engine_core = *core;
    } else if (key == "deadline_ms") {
      if (!ParseSizeStrict(value, &request.deadline_ms)) {
        return R::Error("bad deadline_ms value '" + value + "'");
      }
      request.deadline_in_request = true;
    } else if (key == "on_deadline") {
      if (value == "error") {
        request.on_deadline = OnDeadline::kError;
      } else if (value == "approx") {
        request.on_deadline = OnDeadline::kApprox;
      } else {
        return R::Error("bad on_deadline value '" + value +
                        "' (expected error or approx)");
      }
    } else {
      return R::Error("unknown key '" + key +
                      "' (expected top_k, threads, approx, seed, "
                      "max_samples, force_approx, engine, deadline_ms or "
                      "on_deadline)");
    }
  }
  if (!request.approx.enabled() &&
      (seen.count("seed") > 0 || seen.count("max_samples") > 0 ||
       seen.count("force_approx") > 0)) {
    return R::Error(
        "seed, max_samples and force_approx require approx=EPS[,DELTA]");
  }
  return R::Ok(std::move(request));
}

}  // namespace shapcq
