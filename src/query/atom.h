// Atoms of conjunctive queries: a relation name applied to terms (variables
// or constants), possibly negated.

#ifndef SHAPCQ_QUERY_ATOM_H_
#define SHAPCQ_QUERY_ATOM_H_

#include <cstdint>
#include <string>
#include <vector>

#include "db/value_dictionary.h"

namespace shapcq {

/// Index of a variable within its owning CQ's variable table.
using VarId = int32_t;

/// A term in an atom: either a query variable or a constant.
struct Term {
  enum class Kind : uint8_t { kVariable, kConstant };

  Kind kind = Kind::kVariable;
  VarId var = -1;     // valid iff kind == kVariable
  Value constant{};   // valid iff kind == kConstant

  static Term MakeVar(VarId v) { return Term{Kind::kVariable, v, Value{}}; }
  static Term MakeConst(Value c) { return Term{Kind::kConstant, -1, c}; }

  bool IsVar() const { return kind == Kind::kVariable; }
  bool IsConst() const { return kind == Kind::kConstant; }

  bool operator==(const Term& other) const {
    if (kind != other.kind) return false;
    return IsVar() ? var == other.var : constant == other.constant;
  }
};

/// An atom (¬)R(t1, ..., tk). Relations are referenced by name and resolved
/// against a concrete database at evaluation time, so queries are usable
/// across databases (including the transformed databases ExoShap builds).
struct Atom {
  std::string relation;
  std::vector<Term> terms;
  bool negated = false;

  size_t arity() const { return terms.size(); }
  /// Distinct variables of the atom, in first-occurrence order.
  std::vector<VarId> Variables() const;
  /// True if the variable occurs in some term.
  bool Uses(VarId var) const;
};

}  // namespace shapcq

#endif  // SHAPCQ_QUERY_ATOM_H_
