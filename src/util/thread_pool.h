// A small reusable worker pool for the parallel Shapley engine.
//
// Design goals, in order: correctness under ThreadSanitizer, deterministic
// *results* for the callers (the pool itself schedules dynamically — callers
// must write worker output into pre-assigned slots, never append), and zero
// dependencies beyond <thread>. Tasks are plain std::function<void()>; the
// pool never touches task return values or exceptions (tasks must not throw —
// library errors are SHAPCQ_CHECK aborts).

#ifndef SHAPCQ_UTIL_THREAD_POOL_H_
#define SHAPCQ_UTIL_THREAD_POOL_H_

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <functional>
#include <mutex>
#include <queue>
#include <thread>
#include <vector>

namespace shapcq {

/// Fixed-size pool of worker threads draining one shared FIFO task queue.
/// Submit() enqueues; Wait() blocks the caller until every submitted task has
/// finished. The pool is reusable across Submit/Wait rounds and joins its
/// workers on destruction.
class ThreadPool {
 public:
  /// Spawns `num_threads` workers (at least 1).
  explicit ThreadPool(size_t num_threads);
  ~ThreadPool();
  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  size_t size() const { return workers_.size(); }

  /// Enqueues a task. Safe to call from any thread, including from inside a
  /// running task (the pool does not wait-for-self deadlock on Submit).
  void Submit(std::function<void()> task);

  /// Blocks until all tasks submitted so far have completed. Must be called
  /// from outside the pool's own workers.
  void Wait();

  /// Runs body(i) for every i in [0, n), spread dynamically over the workers
  /// (atomic index grab, so skewed per-item costs balance out), and returns
  /// when all n calls completed. The *assignment* of items to threads is
  /// nondeterministic; callers keep results deterministic by writing
  /// body(i)'s output into slot i of a pre-sized buffer.
  void ParallelFor(size_t n, const std::function<void(size_t)>& body);

  /// Maps a user-facing thread-count request to an actual worker count:
  /// 0 means "auto" (hardware_concurrency, at least 1), anything else is
  /// taken literally. Used by the engine options and the CLI --threads flag.
  static size_t ResolveThreadCount(size_t requested);

 private:
  void WorkerLoop();

  std::vector<std::thread> workers_;
  std::mutex mutex_;
  std::condition_variable task_ready_;   // workers sleep here
  std::condition_variable all_done_;     // Wait() sleeps here
  std::queue<std::function<void()>> queue_;
  size_t in_flight_ = 0;  // tasks submitted but not yet finished
  bool stopping_ = false;
};

}  // namespace shapcq

#endif  // SHAPCQ_UTIL_THREAD_POOL_H_
