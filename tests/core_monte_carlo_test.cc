// Monte-Carlo approximation (Section 5.1): Hoeffding sizing, additive
// accuracy against exact values, and the gap-family failure mode that
// motivates Section 5.

#include "core/monte_carlo.h"

#include <gtest/gtest.h>

#include <cmath>

#include "core/brute_force.h"
#include "core/shapley.h"
#include "datasets/university.h"
#include "query/parser.h"
#include "reductions/gap.h"

namespace shapcq {
namespace {

TEST(MonteCarloTest, HoeffdingCountFormula) {
  // m = ceil(2 ln(2/δ) / ε²).
  EXPECT_EQ(HoeffdingSampleCount(0.1, 0.05),
            static_cast<size_t>(std::ceil(2.0 * std::log(40.0) / 0.01)));
  EXPECT_GT(HoeffdingSampleCount(0.01, 0.05), HoeffdingSampleCount(0.1, 0.05));
  EXPECT_GT(HoeffdingSampleCount(0.1, 0.001), HoeffdingSampleCount(0.1, 0.05));
}

TEST(MonteCarloTest, EstimatesRunningExampleWithinEpsilon) {
  UniversityDb u = BuildUniversityDb();
  const CQ q1 = UniversityQ1();
  const auto exact = ShapleyAllViaCountSat(q1, u.db).value();
  Rng rng(7);
  for (FactId f : u.db.endogenous_facts()) {
    const double estimate =
        ShapleyAdditiveFpras(q1, u.db, f, /*epsilon=*/0.05, /*delta=*/0.01,
                             &rng);
    EXPECT_NEAR(estimate, exact[u.db.endo_index(f)].ToDouble(), 0.05)
        << u.db.FactToString(f);
  }
}

TEST(MonteCarloTest, NegativeValuesEstimatedNegative) {
  UniversityDb u = BuildUniversityDb();
  Rng rng(11);
  const double estimate =
      ShapleyMonteCarlo(UniversityQ1(), u.db, u.ft1, 20000, &rng);
  EXPECT_LT(estimate, -0.05);  // exact is -3/28 ≈ -0.107
}

TEST(MonteCarloTest, ZeroFactEstimatesNearZero) {
  UniversityDb u = BuildUniversityDb();
  Rng rng(13);
  const double estimate =
      ShapleyMonteCarlo(UniversityQ1(), u.db, u.ft3, 20000, &rng);
  EXPECT_NEAR(estimate, 0.0, 0.02);
}

TEST(MonteCarloTest, UcqSampling) {
  Database db;
  FactId a = db.AddEndo("A", {V("mc1")});
  db.AddEndo("C", {V("mc2")});
  UCQ ucq = MustParseUCQ(
      "q1() :- A(x)\n"
      "q2() :- C(x)");
  Rng rng(17);
  // Two symmetric "OR" players: Shapley = 1/2 each.
  EXPECT_NEAR(ShapleyMonteCarlo(ucq, db, a, 20000, &rng), 0.5, 0.02);
}

TEST(MonteCarloTest, GapFamilySamplingCannotSeeTheValue) {
  // Theorem 5.1's point: for the gap family the exact value is
  // n!n!/(2n+1)! — with n = 8 that is ≈ 4.6e-6, far below what 20k samples
  // can distinguish from zero (a multiplicative approximation would need
  // exponentially many samples).
  GapInstance gap = BuildGapFamily(8);
  const CQ q = GapQuery();
  Rng rng(19);
  const double estimate = ShapleyMonteCarlo(q, gap.db, gap.f, 20000, &rng);
  EXPECT_EQ(estimate, 0.0);
  EXPECT_GT(GapTheoreticalShapley(8), Rational(0));
}

TEST(StratifiedTest, EstimatesRunningExampleWithinTolerance) {
  UniversityDb u = BuildUniversityDb();
  const CQ q1 = UniversityQ1();
  const auto exact = ShapleyAllViaCountSat(q1, u.db).value();
  Rng rng(29);
  for (FactId f : u.db.endogenous_facts()) {
    const double estimate =
        ShapleyStratifiedMonteCarlo(q1, u.db, f, 2000, &rng);
    EXPECT_NEAR(estimate, exact[u.db.endo_index(f)].ToDouble(), 0.03)
        << u.db.FactToString(f);
  }
}

TEST(StratifiedTest, ExactWhenStrataAreDeterministic) {
  // One endogenous fact: stratum k=0 is deterministic; the estimate is
  // exact regardless of sample count.
  Database db;
  FactId f = db.AddEndo("R", {V("st1")});
  const CQ q = MustParseCQ("q() :- R(x)");
  Rng rng(31);
  EXPECT_DOUBLE_EQ(ShapleyStratifiedMonteCarlo(q, db, f, 1, &rng), 1.0);
}

TEST(StratifiedTest, LowerVarianceThanPermutationSampler) {
  // Same evaluation budget (n strata × m = n·m subset evaluations vs n·m
  // permutation samples): the stratified estimator's spread across repeated
  // runs should not exceed the plain sampler's.
  UniversityDb u = BuildUniversityDb();
  const CQ q1 = UniversityQ1();
  const size_t n = u.db.endogenous_count();
  const size_t per_stratum = 50;
  const size_t plain_samples = per_stratum * n;
  double plain_var = 0, strat_var = 0;
  const double truth =
      ShapleyViaCountSat(q1, u.db, u.fr4).value().ToDouble();
  const int runs = 30;
  for (int run = 0; run < runs; ++run) {
    Rng rng_a(run * 2 + 1), rng_b(run * 2 + 2);
    const double plain =
        ShapleyMonteCarlo(q1, u.db, u.fr4, plain_samples, &rng_a);
    const double strat =
        ShapleyStratifiedMonteCarlo(q1, u.db, u.fr4, per_stratum, &rng_b);
    plain_var += (plain - truth) * (plain - truth);
    strat_var += (strat - truth) * (strat - truth);
  }
  EXPECT_LE(strat_var, plain_var * 1.25);  // allow sampling noise
}

TEST(MonteCarloTest, DeterministicUnderSeed) {
  UniversityDb u = BuildUniversityDb();
  Rng rng1(23), rng2(23);
  EXPECT_EQ(ShapleyMonteCarlo(UniversityQ1(), u.db, u.fr4, 500, &rng1),
            ShapleyMonteCarlo(UniversityQ1(), u.db, u.fr4, 500, &rng2));
}

}  // namespace
}  // namespace shapcq
