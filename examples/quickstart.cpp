// Quickstart: build the paper's running-example database (Figure 1), ask the
// query q1() :- Stud(x), ¬TA(x), Reg(x,y), and compute the exact Shapley
// value of every endogenous fact — reproducing Example 2.3.
//
//   $ ./example_quickstart

#include <cstdio>

#include "shapcq.h"
#include "datasets/university.h"

int main() {
  using namespace shapcq;

  // 1. A database is a set of facts, each exogenous (given) or endogenous
  //    (a player in the Shapley game). BuildUniversityDb() assembles
  //    Figure 1; here is how you would do it by hand:
  //
  //      Database db;
  //      db.AddExo("Stud", {V("Adam")});
  //      db.AddEndo("TA", {V("Adam")});
  //      db.AddEndo("Reg", {V("Adam"), V("OS")});
  //      ...
  UniversityDb university = BuildUniversityDb();
  Database& db = university.db;

  // 2. Queries are conjunctive queries with safe negation, parsed from a
  //    Datalog-ish syntax. Bare identifiers are variables; constants are
  //    quoted.
  CQ q1 = MustParseCQ("q1() :- Stud(x), not TA(x), Reg(x,y)");
  std::printf("query: %s\n", q1.ToString().c_str());

  // 3. The dichotomy (Theorem 3.1): hierarchical self-join-free CQ¬ are
  //    polynomial, everything else is FP^#P-complete.
  Classification verdict = ClassifyExactShapley(q1).value();
  std::printf("classification: %s\n", verdict.reason.c_str());

  // 4. Exact Shapley values for all endogenous facts (polynomial time via
  //    the CntSat counting algorithm).
  std::vector<Rational> values = ShapleyAllViaCountSat(q1, db).value();
  std::printf("\n%-24s %12s %12s\n", "fact", "Shapley", "~decimal");
  Rational sum(0);
  for (FactId f : db.endogenous_facts()) {
    const Rational& value = values[db.endo_index(f)];
    sum += value;
    std::printf("%-24s %12s %12.6f\n", db.FactToString(f).c_str(),
                value.ToString().c_str(), value.ToDouble());
  }
  std::printf("%-24s %12s %12.6f\n", "sum (efficiency)", sum.ToString().c_str(),
              sum.ToDouble());

  // 5. A quick Monte-Carlo cross-check (the additive FPRAS of Section 5.1).
  Rng rng(2020);
  const double estimate = ShapleyMonteCarlo(q1, db, university.fr4,
                                            /*samples=*/20000, &rng);
  std::printf("\nMonte-Carlo estimate for %s: %.4f (exact %s = %.4f)\n",
              db.FactToString(university.fr4).c_str(), estimate,
              values[db.endo_index(university.fr4)].ToString().c_str(),
              values[db.endo_index(university.fr4)].ToDouble());
  return 0;
}
