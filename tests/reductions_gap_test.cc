// Theorem 5.1: the gap-property violation. The concrete Section 5.1 family
// and the generic construction, with exact values checked by brute force.

#include "reductions/gap.h"

#include <gtest/gtest.h>

#include "core/brute_force.h"
#include "eval/homomorphism.h"
#include "query/parser.h"
#include "util/combinatorics.h"

namespace shapcq {
namespace {

TEST(GapFamilyTest, SizesMatchConstruction) {
  for (int n : {1, 2, 5}) {
    GapInstance gap = BuildGapFamily(n);
    EXPECT_EQ(gap.db.endogenous_count(), static_cast<size_t>(2 * n + 1));
    EXPECT_EQ(gap.db.facts_of("S").size(), static_cast<size_t>(2 * n + 1));
    EXPECT_TRUE(gap.db.is_endogenous(gap.f));
  }
}

TEST(GapFamilyTest, ExactValueMatchesFormula) {
  const CQ q = GapQuery();
  for (int n : {1, 2, 3, 4}) {
    GapInstance gap = BuildGapFamily(n);
    EXPECT_EQ(ShapleyBruteForce(q, gap.db, gap.f), GapTheoreticalShapley(n))
        << "n = " << n;
  }
}

TEST(GapFamilyTest, DxSatisfiesQuery) {
  // The construction's starting point: the exogenous part alone satisfies q.
  GapInstance gap = BuildGapFamily(3);
  EXPECT_TRUE(EvalBoolean(GapQuery(), gap.db, gap.db.EmptyWorld()));
}

TEST(GapFormulaTest, ExponentialDecay) {
  // n!n!/(2n+1)! ≤ 2^{-n}, yet nonzero — the gap property fails.
  for (int n = 1; n <= 20; ++n) {
    const Rational value = GapTheoreticalShapley(n);
    EXPECT_GT(value, Rational(0));
    // 2^{-n} as a rational.
    Rational bound(BigInt(1), BigInt(1).ShiftLeft(static_cast<size_t>(n)));
    EXPECT_LE(value, bound) << "n = " << n;
  }
}

TEST(GapFormulaTest, ClosedForm) {
  EXPECT_EQ(GapTheoreticalShapley(1), Rational::Of(1, 6));
  EXPECT_EQ(GapTheoreticalShapley(2), Rational::Of(4, 120));
  EXPECT_EQ(GapTheoreticalShapley(3), Rational::Of(36, 5040));
}

TEST(GenericGapTest, PreconditionsEnforced) {
  EXPECT_FALSE(BuildGenericGapFamily(
                   MustParseCQ("q() :- R(x), S(x,y)"), 2)
                   .ok());  // no negation
  EXPECT_FALSE(BuildGenericGapFamily(
                   MustParseCQ("q() :- R(x,'c'), not S(x)"), 2)
                   .ok());  // constants
  EXPECT_FALSE(BuildGenericGapFamily(
                   MustParseCQ("q() :- R(x), T(y), not S(x)"), 2)
                   .ok());  // not positively connected
  EXPECT_FALSE(BuildGenericGapFamily(
                   MustParseCQ("q() :- R(x), not R(x)"), 2)
                   .ok());  // canonical DB unsatisfiable
}

TEST(GenericGapTest, MatchesFormulaOnConcreteQuery) {
  // The generic construction applied to the paper's own q must reproduce
  // |Shapley| = n!n!/(2n+1)!.
  const CQ q = GapQuery();
  for (int n : {1, 2}) {
    auto gap = BuildGenericGapFamily(q, n);
    ASSERT_TRUE(gap.ok()) << gap.error();
    EXPECT_EQ(ShapleyBruteForce(q, gap.value().db, gap.value().f).Abs(),
              GapTheoreticalShapley(n))
        << "n = " << n;
  }
}

TEST(GenericGapTest, WorksOnOtherQueries) {
  for (const char* text :
       {"q() :- R(x), S(x,y), not T(y)",
        "q1() :- Stud(x), not TA(x), Reg(x,y)",
        "q() :- A(x,y), not B(y,x)"}) {
    const CQ q = MustParseCQ(text);
    for (int n : {1, 2}) {
      auto gap = BuildGenericGapFamily(q, n);
      ASSERT_TRUE(gap.ok()) << text << ": " << gap.error();
      const Rational value =
          ShapleyBruteForce(q, gap.value().db, gap.value().f);
      EXPECT_EQ(value.Abs(), GapTheoreticalShapley(n))
          << text << " n = " << n;
    }
  }
}

}  // namespace
}  // namespace shapcq
