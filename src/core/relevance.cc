#include "core/relevance.h"

#include <set>

#include "eval/homomorphism.h"
#include "query/analysis.h"
#include "util/check.h"

namespace shapcq {

namespace {

template <typename Query>
bool BruteForce(const Query& q, const Database& db, FactId f, bool positive) {
  SHAPCQ_CHECK(db.is_endogenous(f));
  const size_t n = db.endogenous_count();
  SHAPCQ_CHECK_MSG(n <= 26, "brute-force relevance beyond 2^26 is a bug");
  const size_t f_index = db.endo_index(f);
  World world(n, false);
  const uint64_t subsets = uint64_t{1} << (n - 1);
  for (uint64_t mask = 0; mask < subsets; ++mask) {
    size_t bit = 0;
    for (size_t p = 0; p < n; ++p) {
      if (p == f_index) {
        world[p] = false;
        continue;
      }
      world[p] = (mask >> bit) & 1;
      ++bit;
    }
    const bool before = EvalBoolean(q, db, world);
    world[f_index] = true;
    const bool after = EvalBoolean(q, db, world);
    world[f_index] = false;
    if (positive && !before && after) return true;
    if (!positive && before && !after) return true;
  }
  return false;
}

// Endogenous facts living in relations that occur in a negative atom
// (the paper's Negq(Dn)), as a world-sized mask.
World NegativeCapableFacts(const std::vector<const CQ*>& disjuncts,
                           const Database& db) {
  std::set<std::string> negative_relations;
  for (const CQ* cq : disjuncts) {
    for (const Atom& atom : cq->atoms()) {
      if (atom.negated) negative_relations.insert(atom.relation);
    }
  }
  World mask(db.endogenous_count(), false);
  for (FactId fact : db.endogenous_facts()) {
    const std::string& relation = db.schema().name(db.relation_of(fact));
    if (negative_relations.count(relation)) mask[db.endo_index(fact)] = true;
  }
  return mask;
}

// Shared engine for Algorithms 2 and 3, generalized to unions: search for a
// witnessing homomorphism in any disjunct, with the final satisfaction test
// against the whole query.
template <typename Query>
bool RelevantPolarityConsistent(const Query& whole,
                                const std::vector<const CQ*>& disjuncts,
                                const Database& db, FactId f, bool positive) {
  SHAPCQ_CHECK(db.is_endogenous(f));
  const size_t f_index = db.endo_index(f);
  const World neg_capable = NegativeCapableFacts(disjuncts, db);

  for (const CQ* cq : disjuncts) {
    bool found = ForEachHomomorphism(
        *cq, db, db.FullWorld(), /*enforce_negative=*/false,
        [&](const Assignment& h) {
          // Collect P and N; reject h if a negative atom lands in Dx.
          World in_p(db.endogenous_count(), false);
          World in_n(db.endogenous_count(), false);
          bool f_in_p = false;
          for (const Atom& atom : cq->atoms()) {
            Tuple grounded(atom.terms.size());
            for (size_t i = 0; i < atom.terms.size(); ++i) {
              grounded[i] = atom.terms[i].IsConst()
                                ? atom.terms[i].constant
                                : h[static_cast<size_t>(atom.terms[i].var)];
            }
            const FactId fact = db.FindFact(atom.relation, grounded);
            if (atom.negated) {
              if (fact == kNoFact) continue;
              if (!db.is_endogenous(fact)) return true;  // h blocked by Dx
              in_n[db.endo_index(fact)] = true;
            } else {
              SHAPCQ_CHECK(fact != kNoFact);  // h matched a real fact
              if (db.is_endogenous(fact)) {
                in_p[db.endo_index(fact)] = true;
                if (fact == f) f_in_p = true;
              }
            }
          }
          if (positive != f_in_p) return true;  // wrong polarity for f

          // E = (P \ {f}) ∪ (Negq(Dn) \ N) for the positive test;
          // the negative test additionally keeps f's bit on at the end.
          World world(db.endogenous_count(), false);
          for (size_t i = 0; i < world.size(); ++i) {
            world[i] = (in_p[i] || (neg_capable[i] && !in_n[i]));
          }
          world[f_index] = !positive;
          if (!EvalBoolean(whole, db, world)) return false;  // witness found
          return true;
        });
    if (found) return true;
  }
  return false;
}

std::vector<const CQ*> SingleDisjunct(const CQ& q) { return {&q}; }

std::vector<const CQ*> AllDisjuncts(const UCQ& q) {
  std::vector<const CQ*> result;
  for (const CQ& disjunct : q.disjuncts()) result.push_back(&disjunct);
  return result;
}

}  // namespace

bool IsPosRelevantBruteForce(const CQ& q, const Database& db, FactId f) {
  return BruteForce(q, db, f, /*positive=*/true);
}
bool IsNegRelevantBruteForce(const CQ& q, const Database& db, FactId f) {
  return BruteForce(q, db, f, /*positive=*/false);
}
bool IsRelevantBruteForce(const CQ& q, const Database& db, FactId f) {
  return IsPosRelevantBruteForce(q, db, f) ||
         IsNegRelevantBruteForce(q, db, f);
}
bool IsPosRelevantBruteForce(const UCQ& q, const Database& db, FactId f) {
  return BruteForce(q, db, f, /*positive=*/true);
}
bool IsNegRelevantBruteForce(const UCQ& q, const Database& db, FactId f) {
  return BruteForce(q, db, f, /*positive=*/false);
}
bool IsRelevantBruteForce(const UCQ& q, const Database& db, FactId f) {
  return IsPosRelevantBruteForce(q, db, f) ||
         IsNegRelevantBruteForce(q, db, f);
}

Result<bool> IsPosRelevant(const CQ& q, const Database& db, FactId f) {
  if (!IsPolarityConsistent(q)) {
    return Result<bool>::Error(
        "IsPosRelevant requires a polarity-consistent query: " + q.ToString());
  }
  return Result<bool>::Ok(
      RelevantPolarityConsistent(q, SingleDisjunct(q), db, f, true));
}

Result<bool> IsNegRelevant(const CQ& q, const Database& db, FactId f) {
  if (!IsPolarityConsistent(q)) {
    return Result<bool>::Error(
        "IsNegRelevant requires a polarity-consistent query: " + q.ToString());
  }
  return Result<bool>::Ok(
      RelevantPolarityConsistent(q, SingleDisjunct(q), db, f, false));
}

Result<bool> IsRelevant(const CQ& q, const Database& db, FactId f) {
  auto pos = IsPosRelevant(q, db, f);
  if (!pos.ok() || pos.value()) return pos;
  return IsNegRelevant(q, db, f);
}

Result<bool> IsPosRelevant(const UCQ& q, const Database& db, FactId f) {
  if (!IsPolarityConsistent(q)) {
    return Result<bool>::Error(
        "IsPosRelevant requires a polarity-consistent UCQ (per-disjunct "
        "consistency is not enough, Proposition 5.8)");
  }
  return Result<bool>::Ok(
      RelevantPolarityConsistent(q, AllDisjuncts(q), db, f, true));
}

Result<bool> IsNegRelevant(const UCQ& q, const Database& db, FactId f) {
  if (!IsPolarityConsistent(q)) {
    return Result<bool>::Error(
        "IsNegRelevant requires a polarity-consistent UCQ (per-disjunct "
        "consistency is not enough, Proposition 5.8)");
  }
  return Result<bool>::Ok(
      RelevantPolarityConsistent(q, AllDisjuncts(q), db, f, false));
}

Result<bool> IsRelevant(const UCQ& q, const Database& db, FactId f) {
  auto pos = IsPosRelevant(q, db, f);
  if (!pos.ok() || pos.value()) return pos;
  return IsNegRelevant(q, db, f);
}

Result<bool> ShapleyIsNonzero(const CQ& q, const Database& db, FactId f) {
  // For a fact over a polarity-consistent relation, relevance is equivalent
  // to a nonzero Shapley value (Section 5.2); whole-query consistency makes
  // the relevance algorithms applicable and implies the per-relation one.
  return IsRelevant(q, db, f);
}

Result<bool> ShapleyIsNonzero(const UCQ& q, const Database& db, FactId f) {
  return IsRelevant(q, db, f);
}

}  // namespace shapcq
