// Dichotomy classifiers: the decision procedures behind Theorems 3.1, 4.3
// and 4.10. Given a self-join-free CQ¬ (and optionally a set of exogenous
// relations), they report on which side of the tractability frontier the
// query falls and why.

#ifndef SHAPCQ_QUERY_CLASSIFY_H_
#define SHAPCQ_QUERY_CLASSIFY_H_

#include <string>

#include "query/analysis.h"
#include "query/cq.h"
#include "util/result.h"

namespace shapcq {

/// Data complexity of exact Shapley computation for a query.
enum class Complexity {
  kPolynomialTime,
  kSharpPHard,  // FP^{#P}-complete
};

/// Classification outcome with a human-readable justification (e.g. the
/// non-hierarchical triplet or path witnessing hardness).
struct Classification {
  Complexity complexity;
  std::string reason;

  bool IsTractable() const { return complexity == Complexity::kPolynomialTime; }
};

/// Theorem 3.1: for a safe self-join-free CQ¬, Shapley computation is in
/// PTIME iff the query is hierarchical. Returns an error for unsafe or
/// self-joining queries (outside the theorem's scope).
Result<Classification> ClassifyExactShapley(const CQ& q);

/// Theorem 4.3: with relations in `exo` declared all-exogenous, Shapley
/// computation is FP^{#P}-complete iff the query has a non-hierarchical
/// path, else PTIME.
Result<Classification> ClassifyExactShapley(const CQ& q,
                                            const ExoRelations& exo);

/// Theorem 4.10: query evaluation over tuple-independent probabilistic
/// databases where relations in `deterministic` have probability-1 facts.
/// Same frontier as ClassifyExactShapley(q, exo).
Result<Classification> ClassifyProbabilisticEvaluation(
    const CQ& q, const ExoRelations& deterministic);

}  // namespace shapcq

#endif  // SHAPCQ_QUERY_CLASSIFY_H_
