#!/usr/bin/env python3
"""Socket-serving end-to-end harness for shapcq_server --listen.

Three checks against a real server process:

  1. Concurrent differential: N socket clients drive disjoint sessions
     through a mixed OPEN/DELTA/REPORT/STATS workload at once; each
     client's received byte stream must be identical to replaying its
     command file serially through `shapcq_server --script` (the striped
     registry changes locking, never output).
  2. Admission control: with --max-conns 1, the second concurrent client
     receives one structured "[E_OVERLOAD]" line and an orderly close.
  3. Graceful drain under load: SIGTERM while clients are mid-stream must
     exit 0; with --log-dir, every command acknowledged before the drain
     must recover on restart, and recovered REPORT blocks must be
     byte-identical to an uninterrupted oracle fed the acked prefix.

usage: server_socket_e2e.py SHAPCQ_SERVER
"""

import argparse
import os
import re
import shutil
import signal
import socket
import subprocess
import sys
import tempfile
import threading
import time

QUERY = "q() :- Stud(x), not TA(x), Reg(x,y)"


def fail(message):
    print("FAIL: " + message)
    sys.exit(1)


def client_script(session):
    """The mixed workload of one client, on its private session."""
    lines = [
        "OPEN %s %s" % (session, QUERY),
        "DELTA %s + Stud(ann)" % session,
        "DELTA %s + Stud(bob)" % session,
        "DELTA %s + Reg(ann,os_%s)*" % (session, session),
        "REPORT %s" % session,
        "DELTA %s + Reg(bob,db)*" % session,
        "DELTA %s + TA(bob)*" % session,
        "REPORT %s 2" % session,
        "DELTA %s - Reg(bob,db)" % session,
        "REPORT %s --threads 2" % session,
        "STATS %s" % session,
        "CLOSE %s" % session,
    ]
    return "\n".join(lines) + "\n"


def start_listen_server(server_bin, extra_flags):
    """Starts --listen 127.0.0.1:0 and parses the bound port off stderr."""
    proc = subprocess.Popen(
        [server_bin, "--listen", "127.0.0.1:0"] + extra_flags,
        stdout=subprocess.DEVNULL,
        stderr=subprocess.PIPE,
    )
    deadline = time.time() + 10
    while time.time() < deadline:
        line = proc.stderr.readline()
        if not line:
            fail("server exited before announcing its port")
        match = re.search(rb"listening on 127\.0\.0\.1:(\d+)", line)
        if match:
            return proc, int(match.group(1))
    fail("server never announced its port")


def finish_server(proc):
    """SIGTERMs the server and returns its exit code."""
    proc.send_signal(signal.SIGTERM)
    try:
        code = proc.wait(timeout=30)
    except subprocess.TimeoutExpired:
        proc.kill()
        fail("server did not drain within 30s of SIGTERM")
    proc.stderr.read()
    proc.stderr.close()
    return code


def roundtrip(port, payload):
    """Connects, sends everything, half-closes, drains the reply."""
    sock = socket.create_connection(("127.0.0.1", port), timeout=30)
    try:
        sock.sendall(payload.encode())
        sock.shutdown(socket.SHUT_WR)
    except OSError:
        pass  # server replied and closed already (e.g. overload rejection)
    received = b""
    while True:
        chunk = sock.recv(65536)
        if not chunk:
            break
        received += chunk
    sock.close()
    return received


def serial_replay(server_bin, script_text):
    """The oracle: the same commands through --script, single-writer."""
    with tempfile.NamedTemporaryFile("w", suffix=".txt", delete=False) as f:
        f.write(script_text)
        path = f.name
    try:
        result = subprocess.run(
            [server_bin, "--script", path],
            stdout=subprocess.PIPE,
            stderr=subprocess.DEVNULL,
        )
        if result.returncode != 0:
            fail("serial replay exited %d" % result.returncode)
        return result.stdout
    finally:
        os.unlink(path)


def check_concurrent_differential(server_bin, num_clients):
    proc, port = start_listen_server(server_bin, [])
    sessions = ["conc%d" % i for i in range(num_clients)]
    received = [None] * num_clients

    def drive(index):
        received[index] = roundtrip(port, client_script(sessions[index]))

    threads = [
        threading.Thread(target=drive, args=(i,)) for i in range(num_clients)
    ]
    for t in threads:
        t.start()
    for t in threads:
        t.join()
    code = finish_server(proc)
    if code != 0:
        fail("listen server exited %d after a clean workload" % code)

    for i, session in enumerate(sessions):
        expected = serial_replay(server_bin, client_script(session))
        if received[i] != expected:
            fail(
                "client %s socket transcript differs from serial replay\n"
                "--- socket ---\n%s\n--- serial ---\n%s"
                % (session, received[i].decode(), expected.decode())
            )
    print(
        "concurrent differential: %d clients byte-identical to serial replay"
        % num_clients
    )


def check_connection_cap(server_bin):
    proc, port = start_listen_server(server_bin, ["--max-conns", "1"])
    holder = socket.create_connection(("127.0.0.1", port), timeout=30)
    holder_file = holder.makefile("rwb")
    holder_file.write(b"OPEN s %s\n" % QUERY.encode())
    holder_file.flush()
    if holder_file.readline() != b"> OPEN s %s\n" % QUERY.encode():
        fail("holder echo missing")
    if holder_file.readline() != b"ok open s\n":
        fail("holder ack missing")

    rejected = roundtrip(port, "STATS s\n")
    if rejected != b"error: [E_OVERLOAD] server at connection cap (max 1)\n":
        fail("expected structured overload, got: %r" % rejected)

    holder.shutdown(socket.SHUT_WR)
    holder_file.read()
    holder.close()
    code = finish_server(proc)
    if code != 0:
        fail("capped server exited %d" % code)
    print("connection cap: structured [E_OVERLOAD] and orderly close")


def drive_until_cut(port, session, acked):
    """Streams deltas one round-trip at a time until the server drains.

    Records in `acked` (a list) the number of DELTA commands whose full
    two-line response arrived — exactly the prefix that must recover.
    """
    sock = socket.create_connection(("127.0.0.1", port), timeout=30)
    stream = sock.makefile("rwb")

    def command(line, reply_lines):
        stream.write(line.encode() + b"\n")
        try:
            stream.flush()
        except (BrokenPipeError, ConnectionResetError):
            return False
        for _ in range(reply_lines):
            if not stream.readline():
                return False
        return True

    if not command("OPEN %s %s" % (session, QUERY), 2):
        sock.close()
        return
    count = 0
    for i in range(2000):
        if not command("DELTA %s + Reg(u%d,c%d)*" % (session, i, i), 2):
            break
        count += 1
        acked[0] = count
        time.sleep(0.002)
    sock.close()


def check_sigterm_drain_recovers(server_bin):
    log_dir = tempfile.mkdtemp(prefix="shapcq_socket_e2e_")
    try:
        proc, port = start_listen_server(
            server_bin, ["--log-dir", log_dir, "--fsync=batch"]
        )
        sessions = ["load0", "load1"]
        acks = [[0], [0]]
        threads = [
            threading.Thread(
                target=drive_until_cut, args=(port, sessions[i], acks[i])
            )
            for i in range(len(sessions))
        ]
        for t in threads:
            t.start()
        time.sleep(0.4)  # let both clients get well into their streams
        code = finish_server(proc)  # SIGTERM mid-load
        for t in threads:
            t.join()
        if code != 0:
            fail("SIGTERM mid-load exited %d, want 0" % code)
        for i, session in enumerate(sessions):
            if acks[i][0] == 0:
                fail("client %s had no acked deltas before the drain" % session)

        # Restart on the same log dir: every acked command must be there,
        # and the reports must match an uninterrupted oracle byte for byte.
        for i, session in enumerate(sessions):
            acked = acks[i][0]
            probe = subprocess.run(
                [server_bin, "--log-dir", log_dir, "--script", "/dev/stdin"],
                input=("STATS %s\nREPORT %s\n" % (session, session)).encode(),
                stdout=subprocess.PIPE,
                stderr=subprocess.DEVNULL,
            )
            if probe.returncode != 0:
                fail("recovery probe exited %d" % probe.returncode)
            stats = re.search(
                rb"stats %s facts=(\d+) " % session.encode(), probe.stdout
            )
            if not stats:
                fail("no recovered stats for %s" % session)
            recovered = int(stats.group(1))
            if recovered < acked:
                fail(
                    "session %s recovered %d facts < %d acked before drain"
                    % (session, recovered, acked)
                )

            oracle_script = "OPEN %s %s\n" % (session, QUERY) + "".join(
                "DELTA %s + Reg(u%d,c%d)*\n" % (session, j, j)
                for j in range(recovered)
            ) + "REPORT %s\n" % session
            oracle = serial_replay(server_bin, oracle_script)

            def report_block(output):
                match = re.search(
                    rb"^report .*?^end report [^\n]*\n",
                    output,
                    re.M | re.S,
                )
                return match.group(0) if match else None

            got = report_block(probe.stdout)
            want = report_block(oracle)
            if got is None or want is None or got != want:
                fail("recovered report for %s differs from oracle" % session)
        print(
            "sigterm drain: exit 0, %s acked deltas recovered bit-identical"
            % "/".join(str(a[0]) for a in acks)
        )
    finally:
        shutil.rmtree(log_dir, ignore_errors=True)


def main():
    parser = argparse.ArgumentParser()
    parser.add_argument("server", help="path to shapcq_server")
    parser.add_argument("--clients", type=int, default=4)
    args = parser.parse_args()

    check_concurrent_differential(args.server, args.clients)
    check_connection_cap(args.server)
    check_sigterm_drain_recovers(args.server)
    print("OK")


if __name__ == "__main__":
    main()
