// Example 4.1: attributing citation impact to researchers. The query
//   q() :- Author(x,y), Pub(x,z), Citations(z,w)
// is non-hierarchical — FP^#P-complete by Theorem 3.1 — yet with Pub and
// Citations known to be exogenous, ExoShap computes exact values in
// polynomial time (Theorem 4.3). This example walks the three
// transformation steps and contrasts ExoShap with brute force.
//
//   $ ./example_academic_citations

#include <chrono>
#include <cstdio>

#include "shapcq.h"
#include "core/brute_force.h"
#include "datasets/citations.h"
#include "util/random.h"

int main() {
  using namespace shapcq;
  using Clock = std::chrono::steady_clock;

  const CQ q = CitationsQuery();
  std::printf("query: %s\n\n", q.ToString().c_str());

  // --- Small hand-made instance: inspect the transformation. --------------
  Database small = BuildSmallCitationsDb();
  auto transformed = ExoShapTransform(q, small, CitationsExoRelations());
  std::printf("ExoShap rewrites the query to the hierarchical\n  %s\n",
              transformed.value().query.ToString().c_str());
  std::printf("(the join of Pub and Citations became one exogenous "
              "relation,\n padded to Author's variables per Lemma 4.8)\n\n");

  std::printf("%-28s %10s\n", "fact", "Shapley");
  for (FactId f : small.endogenous_facts()) {
    const Rational value =
        ExoShapShapley(q, small, CitationsExoRelations(), f).value();
    std::printf("%-28s %10s\n", small.FactToString(f).c_str(),
                value.ToString().c_str());
  }

  // Ada's Shapley value is 1 and Grace's is 0: only Ada has a cited paper,
  // so she is fully responsible for the answer.

  // --- Scaling: polynomial ExoShap vs exponential brute force. ------------
  std::printf("\n%-12s %14s %16s\n", "researchers", "ExoShap (ms)",
              "brute force (ms)");
  for (int researchers : {8, 12, 16, 20}) {
    Rng rng(42);
    Database db = BuildRandomCitationsDb(researchers, /*papers=*/researchers,
                                         /*pub_probability=*/0.4,
                                         /*cite_probability=*/0.5, &rng);
    FactId f = db.endogenous_facts()[0];

    auto t0 = Clock::now();
    const Rational fast = ExoShapShapley(q, db, CitationsExoRelations(), f)
                              .value();
    auto t1 = Clock::now();
    double fast_ms = std::chrono::duration<double, std::milli>(t1 - t0).count();

    double slow_ms = -1.0;
    if (researchers <= 16) {  // 2^20 evaluations beyond this
      auto t2 = Clock::now();
      const Rational slow = ShapleyBruteForce(q, db, f);
      auto t3 = Clock::now();
      slow_ms = std::chrono::duration<double, std::milli>(t3 - t2).count();
      if (!(slow == fast)) std::printf("  !! mismatch\n");
    }
    if (slow_ms < 0) {
      std::printf("%-12d %14.2f %16s\n", researchers, fast_ms, "(skipped)");
    } else {
      std::printf("%-12d %14.2f %16.2f\n", researchers, fast_ms, slow_ms);
    }
  }
  return 0;
}
