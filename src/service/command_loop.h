// Line-protocol command loop: the wire layer of the attribution server.
//
// One command per line, executed in order against an EngineRegistry. The
// grammar extends the shapcq_cli --mutate delta grammar:
//
//   OPEN <session> <query-rule>       open a session (empty database);
//                                     non-hierarchical safe self-join-free
//                                     queries ack "ok open <id> approx-only"
//   DELTA <session> + <fact-literal>  insert a fact ('*' = endogenous)
//   DELTA <session> - <fact-literal>  delete the fact with that literal
//   REPORT <session> [key=value ...]  stream the ranked attribution table;
//                                     keys (see service/report_request.h):
//                                     top_k=K threads=N approx=EPS,DELTA
//                                     seed=S max_samples=M force_approx=0|1
//                                     deadline_ms=N on_deadline=error|approx
//                                     (deprecated positional form
//                                     "[top_k] [--threads N]" still accepted)
//   SNAPSHOT <session>                checkpoint + compact the session's
//                                     write-ahead log (durability only)
//   STATS                             registry-wide counters
//   STATS <session>                   per-session counters
//   CLOSE <session>                   close the session
//
// Blank lines and lines starting with '#' are skipped. Commands echo as
// "> <line>" before their output, so a transcript is self-describing (and
// diffable as a CI golden file). Errors print one "error: ..." line and the
// loop continues; Run() returns non-zero if any command errored. All output
// is deterministic: no timestamps, pointers, or platform-dependent byte
// counts, with one flagged exception (the bytes= field of the global STATS
// line, an engine-size estimate; --stats-bytes=off omits it for golden
// transcripts diffed across platforms).
//
// Durability: with options.log_dir set (after InitDurability), every OPEN
// and applied DELTA is written ahead to a per-session append-only log
// (service/session_log.h), so a killed process resumes bit-identical after
// InitDurability replays the logs. Failures of the log itself surface as
// structured "error: [E_LOG_IO] ..." lines that fail the command but keep
// the loop alive; resource guards (max_line_bytes, max_session_facts, the
// stripe queue bound) use [E_LINE_TOO_LONG], [E_FACT_CAP] and [E_OVERLOAD]
// the same way.
//
// Sharing: a loop either owns its registry (the script/stdin server — one
// loop, one registry) or borrows a shared registry + log manager (the
// socket server — one loop per connection over one striped registry). In
// shared mode every command is funneled through the registry's composite
// locked entry points (Mutate / ReportRendered / VisitDatabase), so the
// read-check-act sequences of a command are atomic under the session's
// stripe lock and concurrent connections cannot interleave inside them.
//
// An owning loop is the single writer of its registry (one command at a
// time); REPORT may parallelize internally via --threads, which is safe
// under the engine's single-writer/parallel-reader contract.

#ifndef SHAPCQ_SERVICE_COMMAND_LOOP_H_
#define SHAPCQ_SERVICE_COMMAND_LOOP_H_

#include <atomic>
#include <csignal>
#include <cstddef>
#include <iosfwd>
#include <memory>
#include <string>

#include "service/engine_registry.h"
#include "service/session_log.h"

namespace shapcq {

/// Transport-layer counters, shared by every connection loop of a socket
/// server and surfaced on the global STATS line. Atomics: connection
/// threads bump them concurrently.
struct TransportStats {
  /// Connections reaped by an I/O or idle timeout (read-poll expiries and
  /// idle-watchdog kills alike — both are "the peer went quiet too long").
  std::atomic<size_t> io_timeouts{0};
};

/// Knobs for a CommandLoop.
struct CommandLoopOptions {
  RegistryOptions registry;
  /// Worker threads for REPORT when the command has no --threads override
  /// (1 = serial, 0 = hardware concurrency). Values are identical at any
  /// setting.
  size_t default_threads = 1;
  /// Echo each executed command as "> <line>" before its output.
  bool echo_commands = true;

  /// Directory of per-session write-ahead logs; "" disables durability.
  std::string log_dir;
  /// When appended log records reach stable storage (see FsyncPolicy).
  FsyncPolicy fsync = FsyncPolicy::kBatch;
  /// Auto-compact a session's log once this many DELTA records accumulate
  /// since its last snapshot (0 = only explicit SNAPSHOT commands).
  size_t snapshot_every = 0;

  /// Reject input lines longer than this many bytes (0 = unlimited).
  size_t max_line_bytes = 1 << 20;
  /// Reject inserts that would grow a session past this many live facts
  /// (0 = unlimited). Merged into registry.max_session_facts, where the
  /// cap is enforced under the stripe lock.
  size_t max_session_facts = 0;
  /// Include the platform-dependent "bytes=" estimate in the global STATS
  /// line. Off produces byte-identical transcripts across platforms (the
  /// CI golden files).
  bool stats_show_bytes = true;

  /// Deadline for REPORT commands that carry no deadline_ms key of their
  /// own (0 = none). A request's explicit deadline_ms always wins — in
  /// particular deadline_ms=0 opts a single report out of this default.
  size_t default_deadline_ms = 0;
  /// Shared transport counters (the socket server's); the global STATS
  /// line shows io_timeouts= when set. Null in stdin/script loops, which
  /// keeps their transcripts byte-identical to before sockets existed.
  TransportStats* transport_stats = nullptr;
};

/// Executes protocol lines against an owned or shared EngineRegistry.
class CommandLoop {
 public:
  /// Owning mode: the loop constructs and owns its registry (and, after
  /// InitDurability, its log manager).
  explicit CommandLoop(const CommandLoopOptions& options);

  /// Shared mode: the loop borrows a registry and (nullable) log manager
  /// owned by the caller — one loop per connection over shared state. The
  /// caller handles recovery; InitDurability is a no-op. Both pointers
  /// must outlive the loop.
  CommandLoop(const CommandLoopOptions& options, EngineRegistry* registry,
              SessionLogManager* log);

  /// Brings up the durability layer when this loop owns its core and
  /// options.log_dir is set: creates the directory, replays every existing
  /// session log into the registry (databases rebuilt; engines rebuilt
  /// lazily at the next REPORT), and truncates torn tails. Call once,
  /// before the first command. Returns the number of sessions recovered
  /// (0 with durability off or in shared mode).
  Result<size_t> InitDurability();

  /// Executes one protocol line, appending all output (echo, results,
  /// errors) to *out. Blank and comment lines produce no output.
  void ExecuteLine(const std::string& line, std::string* out);

  /// Reads lines from `in` until EOF, writing output to `out` after each
  /// line (a session script, an interactive stdin loop, or one socket
  /// connection). A transient read failure (EINTR from a signal that is
  /// not shutting the server down) is retried without dropping input;
  /// only genuine EOF or an unrecoverable stream error ends the loop. If
  /// `stop` is non-null, a set flag drains the current command, syncs all
  /// session logs, and returns (the SIGTERM/SIGINT graceful-shutdown
  /// path). Returns 0 if every command succeeded, 1 otherwise.
  int Run(std::istream& in, std::ostream& out,
          const volatile std::sig_atomic_t* stop = nullptr);

  /// Commands that printed an "error:" line so far.
  size_t error_count() const { return error_count_; }

  /// The underlying registry (tests and benchmarks drive it directly).
  EngineRegistry& registry() { return *registry_; }

 private:
  // Owned in owning mode, null in shared mode; registry_/log_ are the
  // working pointers either way (heap-stable, so the loop stays movable).
  std::unique_ptr<EngineRegistry> owned_registry_;
  std::unique_ptr<SessionLogManager> owned_log_;
  EngineRegistry* registry_ = nullptr;
  SessionLogManager* log_ = nullptr;  // null = durability off
  CommandLoopOptions options_;
  size_t error_count_ = 0;
};

}  // namespace shapcq

#endif  // SHAPCQ_SERVICE_COMMAND_LOOP_H_
