// The Lemma B.4 embedding: hardness of every non-hierarchical self-join-free
// CQ¬, made executable.
//
// Given such a query q, a non-hierarchical triplet (α_x, α_xy, α_y) with a
// reduction-compatible polarity signature is selected; the matching base
// query q' ∈ {q_RST, q_¬RS¬T, q_R¬ST, q_RS¬T} is determined by the triplet's
// polarities; and any database D' for q' is embedded into a database D for q
// such that Shapley values of corresponding facts coincide — which the test
// suite verifies with the brute-force engine.
//
// Also here: the instance transformations of Lemmas B.1/B.2 (the reversal
// and complement tricks relating the four base queries).

#ifndef SHAPCQ_REDUCTIONS_EMBED_H_
#define SHAPCQ_REDUCTIONS_EMBED_H_

#include "db/database.h"
#include "query/analysis.h"
#include "query/cq.h"
#include "util/result.h"

namespace shapcq {

/// Which of the four base queries a triplet's polarities map onto.
enum class BaseQueryKind { kRst, kNegRSNegT, kRNegSt, kRSNegT };

/// An embedding plan for a non-hierarchical query.
struct EmbedPlan {
  NonHierarchicalTriplet triplet;  // roles: alpha_x ↔ R, alpha_xy ↔ S, alpha_y ↔ T
  BaseQueryKind base;
};

/// Selects the triplet and base query. Requires q safe, self-join-free and
/// non-hierarchical. If the natural signature has the single negative
/// endpoint on α_x, the triplet's endpoints are swapped so that α_y always
/// plays the ¬T role of q_RS¬T.
Result<EmbedPlan> PlanEmbedding(const CQ& q);

/// The base query of the plan (over relations R, S, T).
CQ BaseQueryOf(BaseQueryKind kind);

/// Embeds a database for the base query (relations R/1, S/2, T/1; every S
/// fact exogenous) into a database for q, per the Lemma B.4 construction.
/// Endogenous facts correspond one-to-one.
Database EmbedDatabase(const CQ& q, const EmbedPlan& plan,
                       const Database& base_db);

/// The embedded counterpart of a base-database fact (facts of R map through
/// α_x, facts of T through α_y). Aborts if the fact is an S fact.
FactId MapEmbeddedFact(const Database& base_db, FactId base_fact, const CQ& q,
                       const EmbedPlan& plan, const Database& embedded_db);

/// Lemma B.2's transformation: replaces S by
/// S' = { (a,b) : R(a) ∈ D, T(b) ∈ D, S(a,b) ∉ D }, so that
/// Shapley(D, q_RST, f) = Shapley(D', q_R¬ST, f).
Database ComplementSWithinRT(const Database& db);

}  // namespace shapcq

#endif  // SHAPCQ_REDUCTIONS_EMBED_H_
