// E2 — the dichotomy tables: classification of every query the paper
// discusses, under Theorem 3.1 and (where the paper names an exogenous set)
// Theorem 4.3. The "paper" column is the complexity the paper assigns.

#include <cstdio>
#include <string>
#include <vector>

#include "query/classify.h"
#include "query/parser.h"

namespace {

struct Row {
  const char* label;
  const char* query;
  const char* exo;    // '|'-separated, empty for Theorem 3.1 rows
  const char* paper;  // expected complexity per the paper
};

const Row kRows[] = {
    {"q1 (Ex 2.2)", "q1() :- Stud(x), not TA(x), Reg(x,y)", "", "PTIME"},
    {"q2 (Ex 2.2)", "q2() :- Stud(x), not TA(x), Reg(x,y), not Course(y,'CS')",
     "", "FP#P-c"},
    {"q_RST", "q() :- R(x), S(x,y), T(y)", "", "FP#P-c"},
    {"q_negRSnegT", "q() :- not R(x), S(x,y), not T(y)", "", "FP#P-c"},
    {"q_RnegST", "q() :- R(x), not S(x,y), T(y)", "", "FP#P-c"},
    {"q_RSnegT", "q() :- R(x), S(x,y), not T(y)", "", "FP#P-c"},
    {"intro (1)", "q() :- Farmer(m), Export(m,p,c), not Grows(c,p)", "",
     "FP#P-c"},
    {"intro (1), Grows exo",
     "q() :- Farmer(m), Export(m,p,c), not Grows(c,p)", "Grows", "PTIME"},
    {"Ex 4.1", "q() :- Author(x,y), Pub(x,z), Citations(z,w)",
     "Pub|Citations", "PTIME"},
    {"Ex 4.1 (Cit. only)", "q() :- Author(x,y), Pub(x,z), Citations(z,w)",
     "Citations", "PTIME"},
    {"Sec 4.1 q", "q() :- not R(x,w), S(z,x), not P(z,w), T(y,w)", "S|P",
     "PTIME"},
    {"Sec 4.1 q'", "q() :- not R(x,w), S(z,x), not P(z,y), T(y,w)", "S|P",
     "FP#P-c"},
    {"q2, Stud/Course exo",
     "q2() :- Stud(x), not TA(x), Reg(x,y), not Course(y,'CS')",
     "Stud|Course", "PTIME"},
    {"Ex 4.2 q'",
     "qp() :- U(t,r), not T(y), Q(y,w), not Vv(t), R(x,y), not S(x,z), O(z), "
     "P(u,y,w)",
     "R|S|O|P|Vv", "PTIME"},
};

shapcq::ExoRelations ParseExo(const char* text) {
  shapcq::ExoRelations exo;
  std::string rest = text;
  while (!rest.empty()) {
    const size_t bar = rest.find('|');
    exo.insert(rest.substr(0, bar));
    rest = bar == std::string::npos ? "" : rest.substr(bar + 1);
  }
  return exo;
}

}  // namespace

int main() {
  using namespace shapcq;
  std::printf("E2: dichotomy classifications (Theorems 3.1 and 4.3)\n\n");
  std::printf("%-22s %-14s %-8s %-8s %-5s\n", "query", "exogenous", "paper",
              "ours", "match");
  bool all = true;
  for (const Row& row : kRows) {
    const CQ q = MustParseCQ(row.query);
    const ExoRelations exo = ParseExo(row.exo);
    const Classification result =
        exo.empty() ? ClassifyExactShapley(q).value()
                    : ClassifyExactShapley(q, exo).value();
    const char* ours = result.IsTractable() ? "PTIME" : "FP#P-c";
    const bool match = std::string(ours) == row.paper;
    all &= match;
    std::printf("%-22s %-14s %-8s %-8s %-5s\n", row.label,
                row.exo[0] ? row.exo : "-", row.paper, ours,
                match ? "yes" : "NO");
  }
  std::printf("\nresult: %s\n", all ? "all classifications match the paper"
                                    : "MISMATCH AGAINST THE PAPER");
  return all ? 0 : 1;
}
