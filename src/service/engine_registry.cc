#include "service/engine_registry.h"

#include <algorithm>
#include <atomic>
#include <cstdint>
#include <map>
#include <mutex>
#include <optional>
#include <unordered_map>
#include <utility>

#include "query/analysis.h"
#include "util/cancel.h"
#include "util/check.h"

namespace shapcq {

namespace {

// Report-cache key of the exact table. ApproxSpec::CacheKey() always
// contains commas, so the empty string can never collide with it.
constexpr const char* kExactKey = "";

// Whether a report-builder error is a deadline outcome (the structured
// [E_DEADLINE] payload from DeadlineExceededMessage).
bool IsDeadlineError(const std::string& error) {
  return error.rfind("[E_DEADLINE]", 0) == 0;
}

// RAII inflight gauge: counts reports between admission and response, so
// STATS can show how many are executing right now. Deterministically 0 in
// any serial transcript (STATS never runs concurrently with a report
// there), hence safe to print in golden sessions.
class InflightGuard {
 public:
  explicit InflightGuard(std::atomic<size_t>* gauge) : gauge_(gauge) {
    gauge_->fetch_add(1, std::memory_order_relaxed);
  }
  ~InflightGuard() { gauge_->fetch_sub(1, std::memory_order_relaxed); }
  InflightGuard(const InflightGuard&) = delete;
  InflightGuard& operator=(const InflightGuard&) = delete;

 private:
  std::atomic<size_t>* gauge_;
};

// Serving copy of a cached full table: the k highest-ranked rows (0 = all),
// with the engine label and the full efficiency total — exactly what
// FillAndRankRows would have produced with ReportOptions::top_k set.
AttributionReport TruncatedCopy(const AttributionReport& full, size_t top_k) {
  AttributionReport copy;
  copy.engine = full.engine;
  copy.total = full.total;
  copy.approximate = full.approximate;
  copy.approx = full.approx;
  const size_t rows = top_k > 0 && top_k < full.rows.size()
                          ? top_k
                          : full.rows.size();
  copy.rows.assign(full.rows.begin(),
                   full.rows.begin() + static_cast<ptrdiff_t>(rows));
  return copy;
}

// Even ceil-share of a registry-wide limit for one of `stripes` stripes
// (0 stays "unlimited"; stripes == 1 keeps the limit verbatim).
size_t StripeShare(size_t limit, size_t stripes) {
  if (limit == 0 || stripes <= 1) return limit;
  return (limit + stripes - 1) / stripes;
}

}  // namespace

// One open session. The Database is heap-allocated so its address survives
// unordered_map rehashes and registry moves — the incremental engine holds a
// pointer to it across calls.
struct EngineRegistry::Session {
  CQ query;
  std::unique_ptr<Database> db;
  std::optional<ShapleyEngine> engine;
  size_t engine_bytes = 0;   // last ApproxMemoryBytes estimate
  uint64_t last_used = 0;    // LRU stamp from the stripe clock
  uint64_t mutation_epoch = 0;  // bumped by every applied mutation
  // One cached full table per epoch. A kExactKey entry is the table ranked
  // by the resident engine: polling reports with no intervening delta skip
  // the whole evaluation and ranking pass (cleared with the engine on
  // eviction). Every other key is an ApproxSpec::CacheKey(): sampling-tier
  // tables, bounded by RegistryOptions::max_approx_cached_reports with
  // least-recently-served eviction, independent of engine residency.
  struct CachedTable {
    AttributionReport table;
    uint64_t epoch = 0;
    uint64_t last_served = 0;
  };
  std::map<std::string, CachedTable> report_cache;
  bool exact_capable = true;       // false = approx-only session
  std::string approx_only_reason;  // classification shown to exact reports
  size_t deltas_applied = 0;
  size_t deltas_since_refresh = 0;  // mutation-path estimate amortizer
  size_t reports_served = 0;
  size_t engine_builds = 0;
  size_t deadline_exceeded = 0;  // expired reports, degraded or not
};

// One lock stripe: a private session map, LRU clock and residency
// accounting, all guarded by `mutex`. Commands on sessions in different
// stripes never contend.
struct EngineRegistry::Stripe {
  mutable std::mutex mutex;
  std::unordered_map<std::string, Session> sessions;
  uint64_t clock = 0;  // monotone use counter backing this stripe's LRU
  size_t resident_bytes = 0;
  size_t resident_engines = 0;
  // Commands currently blocked on `mutex` (the backpressure signal; relaxed
  // ordering suffices for an advisory admission bound).
  std::atomic<size_t> queued{0};
  size_t byte_budget = 0;   // this stripe's ceil-share of the byte budget
  size_t max_resident = 0;  // this stripe's ceil-share of the engine cap
};

struct EngineRegistry::Impl {
  RegistryOptions options;
  std::vector<std::unique_ptr<Stripe>> stripes;

  // OPEN order for SessionIds(), under its own mutex (never held together
  // with a stripe mutex).
  mutable std::mutex order_mutex;
  std::vector<std::string> session_order;

  // Registry-wide counters: atomics, so stripes bump them without sharing a
  // lock. resident_engines/resident_bytes live per stripe (they back the
  // eviction policy) and are summed by stats().
  std::atomic<size_t> open_sessions{0};
  std::atomic<size_t> report_hits{0};
  std::atomic<size_t> report_cache_hits{0};
  std::atomic<size_t> report_misses{0};
  std::atomic<size_t> evictions{0};
  std::atomic<size_t> engine_builds{0};
  std::atomic<size_t> overloads{0};
  std::atomic<size_t> approx_reports{0};
  std::atomic<size_t> deadline_exceeded{0};
  std::atomic<size_t> degraded_to_approx{0};
  std::atomic<size_t> inflight{0};

  Stripe& StripeFor(const std::string& id) {
    return *stripes[std::hash<std::string>{}(id) % stripes.size()];
  }
  const Stripe& StripeFor(const std::string& id) const {
    return *stripes[std::hash<std::string>{}(id) % stripes.size()];
  }

  // Locks the stripe, honoring the admission bound: with max_stripe_queue
  // set, a command finding more than that many commands already waiting
  // fails fast (lock left unlocked) instead of joining the queue.
  bool LockAdmitted(Stripe& stripe, std::unique_lock<std::mutex>* lock) {
    *lock = std::unique_lock<std::mutex>(stripe.mutex, std::defer_lock);
    if (options.max_stripe_queue == 0) {
      lock->lock();
      return true;
    }
    if (lock->try_lock()) return true;
    const size_t waiting =
        stripe.queued.fetch_add(1, std::memory_order_relaxed) + 1;
    if (waiting > options.max_stripe_queue) {
      stripe.queued.fetch_sub(1, std::memory_order_relaxed);
      overloads.fetch_add(1, std::memory_order_relaxed);
      return false;
    }
    lock->lock();
    stripe.queued.fetch_sub(1, std::memory_order_relaxed);
    return true;
  }

  void Evict(Stripe& stripe, Session& session) {
    SHAPCQ_CHECK(session.engine.has_value());
    SHAPCQ_CHECK(stripe.resident_engines > 0);
    SHAPCQ_CHECK(stripe.resident_bytes >= session.engine_bytes);
    stripe.resident_bytes -= session.engine_bytes;
    --stripe.resident_engines;
    evictions.fetch_add(1, std::memory_order_relaxed);
    session.engine.reset();
    // The exact table cache rides with the engine; approx entries are
    // epoch-validated and engine-independent, so they stay.
    session.report_cache.erase(kExactKey);
    session.engine_bytes = 0;
  }

  // Updates the current session's byte estimate and evicts this stripe's
  // least-recently-used engines until both stripe shares hold. `current`
  // (the session that just served a request) is evicted only last, if it
  // alone exceeds a limit. Caller holds the stripe mutex.
  void EnforceBudget(Stripe& stripe, Session& current) {
    if (current.engine.has_value()) {
      const size_t fresh = current.engine->ApproxMemoryBytes();
      stripe.resident_bytes += fresh - current.engine_bytes;
      current.engine_bytes = fresh;
    }
    current.deltas_since_refresh = 0;
    auto over = [&stripe] {
      return (stripe.byte_budget > 0 &&
              stripe.resident_bytes > stripe.byte_budget) ||
             (stripe.max_resident > 0 &&
              stripe.resident_engines > stripe.max_resident);
    };
    while (over()) {
      Session* victim = nullptr;
      for (auto& [id, session] : stripe.sessions) {
        (void)id;
        if (!session.engine.has_value() || &session == &current) continue;
        if (victim == nullptr || session.last_used < victim->last_used) {
          victim = &session;
        }
      }
      if (victim == nullptr) {
        // Only the current engine is resident and it alone breaks a limit:
        // honor the budget between requests by evicting it too.
        if (current.engine.has_value()) Evict(stripe, current);
        return;
      }
      Evict(stripe, *victim);
    }
  }

  // The sampling-tier report path: cached per (ApproxSpec key, epoch),
  // recomputed statelessly through BuildAttributionReport otherwise (the
  // approx engine needs no residency — its state is the database itself).
  // Caller holds the stripe mutex.
  Result<AttributionReport> ApproxReportLocked(Stripe& stripe,
                                               Session& session,
                                               const ReportOptions& options) {
    approx_reports.fetch_add(1, std::memory_order_relaxed);
    const std::string key = options.approx.CacheKey();
    auto it = session.report_cache.find(key);
    if (it != session.report_cache.end() &&
        it->second.epoch == session.mutation_epoch) {
      report_cache_hits.fetch_add(1, std::memory_order_relaxed);
      ++session.reports_served;
      session.last_used = ++stripe.clock;
      it->second.last_served = session.last_used;
      return Result<AttributionReport>::Ok(
          TruncatedCopy(it->second.table, options.top_k));
    }
    ReportOptions full = options;
    full.top_k = 0;
    full.engine_core = this->options.engine_core;
    auto built = BuildAttributionReport(session.query, *session.db, full);
    if (!built.ok()) return Result<AttributionReport>::Error(built.error());
    ++session.reports_served;
    session.last_used = ++stripe.clock;
    AttributionReport served =
        TruncatedCopy(built.value(), options.top_k);
    if (this->options.max_approx_cached_reports > 0) {
      Session::CachedTable entry;
      entry.table = std::move(built).value();
      entry.epoch = session.mutation_epoch;
      entry.last_served = session.last_used;
      session.report_cache[key] = std::move(entry);
      EnforceApproxCacheBound(session);
    }
    return Result<AttributionReport>::Ok(std::move(served));
  }

  // Drops least-recently-served approx entries (and any stale-epoch ones
  // first — they can never be served again) until the per-session bound
  // holds. Caller holds the stripe mutex.
  void EnforceApproxCacheBound(Session& session) {
    const size_t bound = options.max_approx_cached_reports;
    auto approx_count = [&session] {
      return session.report_cache.size() -
             session.report_cache.count(kExactKey);
    };
    for (auto it = session.report_cache.begin();
         it != session.report_cache.end() && approx_count() > bound;) {
      if (it->first != kExactKey &&
          it->second.epoch != session.mutation_epoch) {
        it = session.report_cache.erase(it);
      } else {
        ++it;
      }
    }
    while (approx_count() > bound) {
      auto victim = session.report_cache.end();
      for (auto it = session.report_cache.begin();
           it != session.report_cache.end(); ++it) {
        if (it->first == kExactKey) continue;
        if (victim == session.report_cache.end() ||
            it->second.last_served < victim->second.last_served) {
          victim = it;
        }
      }
      session.report_cache.erase(victim);
    }
  }

  // One deadline expiry, resolved under the stripe lock: bump the counters,
  // then either degrade to a prompt work-bounded sampling answer
  // (on_deadline = kApprox and the caller allows it) or return the
  // structured [E_DEADLINE] error. Degraded tables are never cached — they
  // are a deadline artifact, not a requested spec, and must not shadow a
  // future honest approx entry.
  Result<AttributionReport> DeadlineOutcomeLocked(Stripe& stripe,
                                                  Session& session,
                                                  const ReportOptions& options,
                                                  bool allow_degrade) {
    deadline_exceeded.fetch_add(1, std::memory_order_relaxed);
    ++session.deadline_exceeded;
    if (allow_degrade && options.on_deadline == OnDeadline::kApprox) {
      degraded_to_approx.fetch_add(1, std::memory_order_relaxed);
      approx_reports.fetch_add(1, std::memory_order_relaxed);
      ReportOptions full = options;
      full.top_k = 0;
      full.engine_core = this->options.engine_core;
      auto built =
          BuildDegradedApproxReport(session.query, *session.db, full);
      if (!built.ok()) {
        return Result<AttributionReport>::Error(built.error());
      }
      ++session.reports_served;
      session.last_used = ++stripe.clock;
      return Result<AttributionReport>::Ok(
          TruncatedCopy(built.value(), options.top_k));
    }
    return Result<AttributionReport>::Error(
        DeadlineExceededMessage(options.deadline_ms));
  }

  // The locked core of Report/ReportRendered: dispatches exact vs approx,
  // ensures residency on the exact path, serves from the epoch cache when
  // valid, re-ranks otherwise, then enforces the stripe budget. Caller
  // holds the stripe mutex.
  Result<AttributionReport> ReportLocked(Stripe& stripe, Session& session,
                                         const ReportOptions& options) {
    InflightGuard inflight_guard(&inflight);
    // One token per request: a caller-owned token wins, else deadline_ms
    // arms a local one; nullptr keeps the whole machinery off the path.
    CancelToken deadline_token;
    const CancelToken* cancel = options.cancel;
    if (cancel == nullptr && options.deadline_ms > 0) {
      deadline_token.ArmDeadlineMillis(options.deadline_ms);
      cancel = &deadline_token;
    }
    if (cancel != nullptr && !cancel->Enabled()) cancel = nullptr;
    // Auto-dispatch: exact-capable sessions keep their exact path unless
    // the caller forces sampling; approx-only sessions require a spec.
    const bool use_approx =
        options.approx.enabled() &&
        (!session.exact_capable || options.approx.force);
    if (cancel != nullptr && cancel->Expired()) {
      // Already expired at admission (a zero/elapsed deadline): fail — or
      // degrade — before touching the cache or the engine, so the fast
      // path is deterministic. Sampling requests have no tier left below
      // them, so their expiry is always the error.
      return DeadlineOutcomeLocked(
          stripe, session, options,
          /*allow_degrade=*/!use_approx && session.exact_capable);
    }
    if (use_approx) {
      auto valid = options.approx.Validate();
      if (!valid.ok()) return Result<AttributionReport>::Error(valid.error());
      ReportOptions deadlined = options;
      deadlined.cancel = cancel;
      auto served = ApproxReportLocked(stripe, session, deadlined);
      if (!served.ok() && IsDeadlineError(served.error())) {
        // Terminal for the sampling tier: count it, no degradation.
        deadline_exceeded.fetch_add(1, std::memory_order_relaxed);
        ++session.deadline_exceeded;
      }
      return served;
    }
    if (!session.exact_capable) {
      return Result<AttributionReport>::Error(
          session.approx_only_reason +
          "; this session serves approx reports only "
          "(pass approx=EPS,DELTA)");
    }
    if (session.engine.has_value()) {
      report_hits.fetch_add(1, std::memory_order_relaxed);
      auto it = session.report_cache.find(kExactKey);
      if (it != session.report_cache.end() &&
          it->second.epoch == session.mutation_epoch) {
        // Steady-state polling: no delta since the cached table was ranked,
        // so it is the report, verbatim. Nothing resident changed size, so
        // the budget needs no re-enforcement either.
        report_cache_hits.fetch_add(1, std::memory_order_relaxed);
        ++session.reports_served;
        session.last_used = ++stripe.clock;
        it->second.last_served = session.last_used;
        return Result<AttributionReport>::Ok(
            TruncatedCopy(it->second.table, options.top_k));
      }
    } else {
      auto built = ShapleyEngine::Build(session.query, *session.db,
                                        this->options.engine_core, cancel);
      if (!built.ok()) {
        if (CancelToken::IsCancelled(built.error())) {
          // The cancelled build was discarded whole — nothing resident,
          // nothing accounted, the database untouched.
          return DeadlineOutcomeLocked(stripe, session, options,
                                       /*allow_degrade=*/true);
        }
        return Result<AttributionReport>::Error(built.error());
      }
      session.engine.emplace(std::move(built).value());
      session.engine_bytes = 0;  // EnforceBudget refreshes the estimate
      report_misses.fetch_add(1, std::memory_order_relaxed);
      engine_builds.fetch_add(1, std::memory_order_relaxed);
      ++stripe.resident_engines;
      ++session.engine_builds;
    }
    // Compute and cache the FULL table (top_k applied per serve, so one
    // cache entry answers every truncation). The served copy is taken
    // before budget enforcement: EnforceBudget may evict the current engine
    // — and the cache with it — when it alone exceeds the stripe share.
    ReportOptions full = options;
    full.top_k = 0;
    auto computed = BuildAttributionReportFromEngine(*session.engine,
                                                     *session.db, full,
                                                     cancel);
    if (!computed.ok()) {
      if (IsDeadlineError(computed.error())) {
        // The sweep stopped between orbits: every finished value is pure
        // and stays warm, but the engine is resident with a stale (zero)
        // byte estimate — re-enforce the stripe accounting before the
        // lock drops so eviction pressure sees the truth.
        EnforceBudget(stripe, session);
        return DeadlineOutcomeLocked(stripe, session, options,
                                     /*allow_degrade=*/true);
      }
      return Result<AttributionReport>::Error(computed.error());
    }
    Session::CachedTable entry;
    entry.table = std::move(computed).value();
    entry.epoch = session.mutation_epoch;
    ++session.reports_served;
    session.last_used = ++stripe.clock;
    entry.last_served = session.last_used;
    AttributionReport served = TruncatedCopy(entry.table, options.top_k);
    session.report_cache[kExactKey] = std::move(entry);
    EnforceBudget(stripe, session);
    return Result<AttributionReport>::Ok(std::move(served));
  }
};

EngineRegistry::EngineRegistry(const RegistryOptions& options)
    : impl_(std::make_unique<Impl>()) {
  impl_->options = options;
  const size_t stripes =
      options.num_stripes == 0 ? 1 : options.num_stripes;
  impl_->stripes.reserve(stripes);
  for (size_t i = 0; i < stripes; ++i) {
    auto stripe = std::make_unique<Stripe>();
    stripe->byte_budget = StripeShare(options.engine_byte_budget, stripes);
    stripe->max_resident = StripeShare(options.max_resident_engines, stripes);
    impl_->stripes.push_back(std::move(stripe));
  }
}
EngineRegistry::EngineRegistry() : EngineRegistry(RegistryOptions{}) {}
EngineRegistry::~EngineRegistry() = default;
EngineRegistry::EngineRegistry(EngineRegistry&&) noexcept = default;
EngineRegistry& EngineRegistry::operator=(EngineRegistry&&) noexcept = default;

Result<bool> EngineRegistry::Open(const std::string& session_id,
                                  const CQ& query) {
  // Fail at OPEN with the exact scope checks Build() would fail later, so a
  // session never accepts mutations it can not report on. Pure query
  // analysis — no need to hold the stripe lock yet.
  if (!IsSafe(query)) {
    return Result<bool>::Error("query has unsafe negation: " +
                               query.ToString());
  }
  if (!IsSelfJoinFree(query)) {
    return Result<bool>::Error("query has a self-join: " + query.ToString());
  }
  // Non-hierarchical (but evaluable) queries are FP^#P-hard for exact
  // Shapley, yet the sampling tier serves them: admit the session as
  // approx-only instead of rejecting the stream outright.
  const bool exact_capable = IsHierarchical(query);
  Stripe& stripe = impl_->StripeFor(session_id);
  {
    std::lock_guard<std::mutex> lock(stripe.mutex);
    if (stripe.sessions.count(session_id) > 0) {
      return Result<bool>::Error("session " + session_id +
                                 " is already open");
    }
    Session session;
    session.query = query;
    session.db = std::make_unique<Database>();
    session.exact_capable = exact_capable;
    if (!exact_capable) {
      session.approx_only_reason =
          "query is not hierarchical: " + query.ToString();
    }
    stripe.sessions.emplace(session_id, std::move(session));
  }
  {
    std::lock_guard<std::mutex> lock(impl_->order_mutex);
    impl_->session_order.push_back(session_id);
  }
  impl_->open_sessions.fetch_add(1, std::memory_order_relaxed);
  return Result<bool>::Ok(exact_capable);
}

bool EngineRegistry::Has(const std::string& session_id) const {
  const Stripe& stripe = impl_->StripeFor(session_id);
  std::lock_guard<std::mutex> lock(stripe.mutex);
  return stripe.sessions.count(session_id) > 0;
}

Result<FactId> EngineRegistry::ApplyMutation(const std::string& session_id,
                                             const MutationSpec& mutation) {
  auto outcome = Mutate(session_id, mutation, nullptr, nullptr);
  if (!outcome.ok()) return Result<FactId>::Error(outcome.error());
  return Result<FactId>::Ok(outcome.value().fact);
}

Result<MutationOutcome> EngineRegistry::Mutate(
    const std::string& session_id, const MutationSpec& mutation,
    const std::function<Result<bool>()>* write_ahead,
    const std::function<void(const Database&)>* post_apply) {
  using R = Result<MutationOutcome>;
  Stripe& stripe = impl_->StripeFor(session_id);
  std::unique_lock<std::mutex> lock;
  if (!impl_->LockAdmitted(stripe, &lock)) {
    return R::Error("[E_OVERLOAD] stripe command queue is full (bound " +
                    std::to_string(impl_->options.max_stripe_queue) + ")");
  }
  auto it = stripe.sessions.find(session_id);
  if (it == stripe.sessions.end()) {
    return R::Error("no open session " + session_id);
  }
  Session* session = &it->second;
  Database& db = *session->db;
  const FactSpec& fact = mutation.fact;

  if (impl_->options.max_session_facts > 0 &&
      mutation.op == MutationSpec::Op::kInsert &&
      db.fact_count() >= impl_->options.max_session_facts) {
    return R::Error("[E_FACT_CAP] session at fact cap " +
                    std::to_string(impl_->options.max_session_facts));
  }
  if (write_ahead != nullptr && *write_ahead) {
    // Write-ahead point: the record is durable before the mutation applies.
    // If the apply below fails, replay fails identically against the same
    // database state, so the logged record stays a faithful no-op. Running
    // it under the stripe lock keeps log order == apply order per session.
    auto logged = (*write_ahead)();
    if (!logged.ok()) return R::Error("[E_LOG_IO] " + logged.error());
  }

  Result<FactId> applied = Result<FactId>::Error("");
  if (mutation.op == MutationSpec::Op::kDelete) {
    const FactId victim = db.FindFact(fact.relation, fact.tuple);
    if (victim == kNoFact) {
      return R::Error("no such fact " + FactSpecToString(fact));
    }
    if (session->engine.has_value()) {
      applied = session->engine->DeleteFact(db, victim);
    } else {
      db.RemoveFact(victim);
      applied = Result<FactId>::Ok(victim);
    }
  } else if (session->engine.has_value()) {
    applied = session->engine->InsertFact(db, fact.relation, fact.tuple,
                                          fact.endogenous);
  } else {
    // No resident engine: run the same checks InsertFact would, with the
    // SAME message strings, then mutate the database directly — a protocol
    // transcript must not depend on whether the engine happened to be
    // resident (or evicted) when a delta failed.
    const RelationId rel = db.schema().Find(fact.relation);
    if (rel != kNoRelation && db.schema().arity(rel) != fact.tuple.size()) {
      return R::Error("InsertFact: arity mismatch for relation " +
                      fact.relation);
    }
    for (const Atom& atom : session->query.atoms()) {
      if (atom.relation == fact.relation &&
          atom.arity() != fact.tuple.size()) {
        return R::Error("InsertFact: arity mismatch with query atom " +
                        fact.relation);
      }
    }
    if (rel != kNoRelation && db.FindFact(rel, fact.tuple) != kNoFact) {
      return R::Error("InsertFact: duplicate fact in " + fact.relation);
    }
    applied = Result<FactId>::Ok(
        db.AddFact(fact.relation, fact.tuple, fact.endogenous));
  }
  if (!applied.ok()) return R::Error(applied.error());
  ++session->deltas_applied;
  ++session->mutation_epoch;
  session->last_used = ++stripe.clock;
  if (session->engine.has_value() &&
      impl_->options.refresh_every_deltas > 0 &&
      ++session->deltas_since_refresh >=
          impl_->options.refresh_every_deltas) {
    // The burst of mutations may have grown the index (new slices, wider
    // vectors): refresh the O(index) estimate every K-th delta so STATS is
    // at most K deltas stale, and let the byte budget evict here instead of
    // waiting for the next report. Amortized, so the delta path stays
    // O(dirtied path) on average.
    impl_->EnforceBudget(stripe, *session);
  }
  MutationOutcome outcome;
  outcome.fact = applied.value();
  outcome.fact_count = db.fact_count();
  outcome.endo_count = db.endogenous_count();
  if (post_apply != nullptr && *post_apply) (*post_apply)(db);
  return R::Ok(outcome);
}

Result<AttributionReport> EngineRegistry::Report(const std::string& session_id,
                                                 const ReportOptions& options) {
  Stripe& stripe = impl_->StripeFor(session_id);
  std::unique_lock<std::mutex> lock;
  if (!impl_->LockAdmitted(stripe, &lock)) {
    return Result<AttributionReport>::Error(
        "[E_OVERLOAD] stripe command queue is full (bound " +
        std::to_string(impl_->options.max_stripe_queue) + ")");
  }
  auto it = stripe.sessions.find(session_id);
  if (it == stripe.sessions.end()) {
    return Result<AttributionReport>::Error("no open session " + session_id);
  }
  return impl_->ReportLocked(stripe, it->second, options);
}

Result<RenderedReport> EngineRegistry::ReportRendered(
    const std::string& session_id, const ReportOptions& options) {
  Stripe& stripe = impl_->StripeFor(session_id);
  std::unique_lock<std::mutex> lock;
  if (!impl_->LockAdmitted(stripe, &lock)) {
    return Result<RenderedReport>::Error(
        "[E_OVERLOAD] stripe command queue is full (bound " +
        std::to_string(impl_->options.max_stripe_queue) + ")");
  }
  auto it = stripe.sessions.find(session_id);
  if (it == stripe.sessions.end()) {
    return Result<RenderedReport>::Error("no open session " + session_id);
  }
  Session& session = it->second;
  auto report = impl_->ReportLocked(stripe, session, options);
  if (!report.ok()) return Result<RenderedReport>::Error(report.error());
  RenderedReport rendered;
  rendered.rows = report.value().rows.size();
  rendered.endo_count = session.db->endogenous_count();
  rendered.text = RenderReport(report.value(), *session.db);
  return Result<RenderedReport>::Ok(std::move(rendered));
}

Result<bool> EngineRegistry::Close(const std::string& session_id) {
  Stripe& stripe = impl_->StripeFor(session_id);
  {
    std::lock_guard<std::mutex> lock(stripe.mutex);
    auto it = stripe.sessions.find(session_id);
    if (it == stripe.sessions.end()) {
      return Result<bool>::Error("no open session " + session_id);
    }
    Session& session = it->second;
    if (session.engine.has_value()) {
      // Drop the engine's residency accounting without counting an eviction.
      SHAPCQ_CHECK(stripe.resident_engines > 0);
      --stripe.resident_engines;
      stripe.resident_bytes -= session.engine_bytes;
      session.engine.reset();  // before the Database it points into
    }
    stripe.sessions.erase(it);
  }
  {
    std::lock_guard<std::mutex> lock(impl_->order_mutex);
    auto& order = impl_->session_order;
    order.erase(std::find(order.begin(), order.end(), session_id));
  }
  impl_->open_sessions.fetch_sub(1, std::memory_order_relaxed);
  return Result<bool>::Ok(true);
}

Result<bool> EngineRegistry::VisitDatabase(
    const std::string& session_id,
    const std::function<void(const Database&)>& fn) const {
  const Stripe& stripe = impl_->StripeFor(session_id);
  std::lock_guard<std::mutex> lock(stripe.mutex);
  auto it = stripe.sessions.find(session_id);
  if (it == stripe.sessions.end()) {
    return Result<bool>::Error("no open session " + session_id);
  }
  fn(*it->second.db);
  return Result<bool>::Ok(true);
}

const Database* EngineRegistry::FindDatabase(
    const std::string& session_id) const {
  const Stripe& stripe = impl_->StripeFor(session_id);
  std::lock_guard<std::mutex> lock(stripe.mutex);
  auto it = stripe.sessions.find(session_id);
  return it == stripe.sessions.end() ? nullptr : it->second.db.get();
}

Result<SessionStats> EngineRegistry::Stats(
    const std::string& session_id) const {
  const Stripe& stripe = impl_->StripeFor(session_id);
  std::lock_guard<std::mutex> lock(stripe.mutex);
  auto it = stripe.sessions.find(session_id);
  if (it == stripe.sessions.end()) {
    return Result<SessionStats>::Error("no open session " + session_id);
  }
  const Session& session = it->second;
  SessionStats stats;
  stats.fact_count = session.db->fact_count();
  stats.endo_count = session.db->endogenous_count();
  stats.deltas_applied = session.deltas_applied;
  stats.reports_served = session.reports_served;
  stats.engine_builds = session.engine_builds;
  stats.engine_resident = session.engine.has_value();
  stats.engine_bytes = session.engine_bytes;
  stats.exact_capable = session.exact_capable;
  stats.cached_exact_tables = session.report_cache.count(kExactKey);
  stats.cached_approx_tables =
      session.report_cache.size() - stats.cached_exact_tables;
  stats.deadline_exceeded = session.deadline_exceeded;
  return Result<SessionStats>::Ok(stats);
}

RegistryStats EngineRegistry::stats() const {
  RegistryStats stats;
  stats.open_sessions =
      impl_->open_sessions.load(std::memory_order_relaxed);
  stats.report_hits = impl_->report_hits.load(std::memory_order_relaxed);
  stats.report_cache_hits =
      impl_->report_cache_hits.load(std::memory_order_relaxed);
  stats.report_misses = impl_->report_misses.load(std::memory_order_relaxed);
  stats.evictions = impl_->evictions.load(std::memory_order_relaxed);
  stats.engine_builds = impl_->engine_builds.load(std::memory_order_relaxed);
  stats.overloads = impl_->overloads.load(std::memory_order_relaxed);
  stats.approx_reports = impl_->approx_reports.load(std::memory_order_relaxed);
  stats.deadline_exceeded =
      impl_->deadline_exceeded.load(std::memory_order_relaxed);
  stats.degraded_to_approx =
      impl_->degraded_to_approx.load(std::memory_order_relaxed);
  stats.inflight = impl_->inflight.load(std::memory_order_relaxed);
  for (const auto& stripe : impl_->stripes) {
    std::lock_guard<std::mutex> lock(stripe->mutex);
    stats.resident_engines += stripe->resident_engines;
    stats.resident_bytes += stripe->resident_bytes;
    for (const auto& [id, session] : stripe->sessions) {
      (void)id;
      const size_t exact = session.report_cache.count(kExactKey);
      stats.cached_exact_tables += exact;
      stats.cached_approx_tables += session.report_cache.size() - exact;
    }
  }
  return stats;
}

std::vector<std::string> EngineRegistry::SessionIds() const {
  std::lock_guard<std::mutex> lock(impl_->order_mutex);
  return impl_->session_order;
}

}  // namespace shapcq
