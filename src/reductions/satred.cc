#include "reductions/satred.h"

#include "query/parser.h"
#include "util/check.h"

namespace shapcq {

namespace {

// Value for propositional variable `var` (0-based).
Value VarValue(int var) {
  std::string name = "x";
  name += std::to_string(var + 1);
  return V(name);
}

}  // namespace

CQ QrstNegR() {
  return MustParseCQ(
      "qRSTnegR() :- T(z), not R(x), not R(y), R(z), R(w), S(x,y,z,w)");
}

RelevanceInstance EncodeQrstNegR(const CnfFormula& formula) {
  SHAPCQ_CHECK_MSG(Is224Form(formula), "formula must be (2+,2-,4+-)");
  bool has_positive_two_clause = false;
  RelevanceInstance out;
  Database& db = out.db;
  const Value a = V("a"), b = V("b"), c = V("c"), d = V("d");

  for (int i = 0; i < formula.num_vars; ++i) {
    db.AddEndo("R", {VarValue(i)});
    db.AddExo("T", {VarValue(i)});
  }
  for (const Clause& clause : formula.clauses) {
    std::vector<int> pos, neg;
    for (const Literal& literal : clause.literals) {
      (literal.positive ? pos : neg).push_back(literal.var);
    }
    if (pos.size() == 2 && neg.empty()) {
      // (xi ∨ xj): fires the query iff both R-facts are absent.
      has_positive_two_clause = true;
      db.AddFactIfAbsent(
          "S", {VarValue(pos[0]), VarValue(pos[1]), a, a}, false);
    } else if (neg.size() == 2 && pos.empty()) {
      // (¬xi ∨ ¬xj): fires iff both R-facts are present.
      db.AddFactIfAbsent(
          "S", {b, b, VarValue(neg[0]), VarValue(neg[1])}, false);
    } else {
      // (xi ∨ xj ∨ ¬xk ∨ ¬xl).
      db.AddFactIfAbsent("S",
                         {VarValue(pos[0]), VarValue(pos[1]),
                          VarValue(neg[0]), VarValue(neg[1])},
                         false);
    }
  }
  SHAPCQ_CHECK_MSG(has_positive_two_clause,
                   "encoder needs a (xi ∨ xj) clause (the non-trivial "
                   "regime of Proposition 5.5)");
  db.AddExo("R", {a});
  db.AddExo("T", {a});
  // The gadget that lets f = T(c) flip the answer.
  db.AddExo("R", {c});
  db.AddExo("S", {d, d, c, c});
  out.f = db.AddEndo("T", {c});
  return out;
}

RelevanceInstance Figure4Instance() {
  // (x1 ∨ x2) ∧ (¬x1 ∨ ¬x3) ∧ (x3 ∨ x4 ∨ ¬x1 ∨ ¬x2), variables 0-based.
  CnfFormula formula;
  formula.num_vars = 4;
  formula.clauses.push_back(Clause{{{0, true}, {1, true}}});
  formula.clauses.push_back(Clause{{{0, false}, {2, false}}});
  formula.clauses.push_back(
      Clause{{{2, true}, {3, true}, {0, false}, {1, false}}});
  return EncodeQrstNegR(formula);
}

UCQ QSat() {
  return MustParseUCQ(
      "q1() :- C(x1,x2,x3,v1,v2,v3), T(x1,v1), T(x2,v2), T(x3,v3)\n"
      "q2() :- V(x), not T(x,'1'), not T(x,'0')\n"
      "q3() :- T(x,'1'), T(x,'0')\n"
      "q4() :- R('0')");
}

RelevanceInstance EncodeQSat(const CnfFormula& formula) {
  SHAPCQ_CHECK_MSG(Is3CnfForm(formula), "formula must be 3CNF");
  RelevanceInstance out;
  Database& db = out.db;
  const Value zero = V("0"), one = V("1");

  for (int i = 0; i < formula.num_vars; ++i) {
    db.AddExo("V", {VarValue(i)});
    db.AddEndo("T", {VarValue(i), one});
    db.AddEndo("T", {VarValue(i), zero});
  }
  for (const Clause& clause : formula.clauses) {
    // C(i, j, k, vi, vj, vk) with vt the truth value that VIOLATES literal t:
    // vt = 0 for a positive literal, 1 for a negative one.
    Tuple tuple(6);
    for (size_t t = 0; t < 3; ++t) {
      tuple[t] = VarValue(clause.literals[t].var);
      tuple[3 + t] = clause.literals[t].positive ? zero : one;
    }
    db.AddFactIfAbsent("C", std::move(tuple), false);
  }
  out.f = db.AddEndo("R", {zero});
  return out;
}

}  // namespace shapcq
