// Multi-session engine registry: the state layer of the attribution server.
//
// A session is one (query, database-stream) pair: the query is fixed at OPEN,
// the database starts empty and evolves through a stream of fact mutations.
// The registry owns each session's Database (heap-allocated, address-stable —
// the incremental ShapleyEngine captures it by pointer) and, while resident,
// the session's incremental engine.
//
// Engines are the expensive, evictable part. They are built lazily on the
// first report, maintained incrementally by InsertFact/DeleteFact while
// resident, and evicted least-recently-used when the byte budget (or the
// resident-engine cap) is exceeded. An evicted session stays open: its
// database keeps absorbing mutations directly, and the next report rebuilds
// the engine from the retained database ("rebuild-on-readmission"). Reports
// are bit-identical either way — the incremental engine is bit-identical to
// a fresh Build() on the mutated database (PR 3's contract).
//
// Threading: sessions are hashed across `RegistryOptions::num_stripes`
// lock stripes. Every public method takes its session's stripe mutex, so
// commands on sessions in DIFFERENT stripes proceed in parallel while
// commands on the same session (or stripe neighbors) serialize — the
// engine's single-writer/parallel-reader contract composes with one writer
// per stripe. Registry-wide counters are atomics; the LRU clock, the byte
// accounting and the eviction policy are all per stripe (each stripe gets
// an even ceil-share of the byte budget and the resident cap, so
// num_stripes = 1 reproduces the PR 4 single-writer semantics exactly).
// Backpressure: with `max_stripe_queue` set, a mutation or report that
// would be queued behind more than that many commands on its stripe fails
// fast with a structured "[E_OVERLOAD]" error instead of blocking.

#ifndef SHAPCQ_SERVICE_ENGINE_REGISTRY_H_
#define SHAPCQ_SERVICE_ENGINE_REGISTRY_H_

#include <cstddef>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "core/report.h"
#include "core/shapley_engine.h"
#include "db/database.h"
#include "db/textio.h"
#include "query/cq.h"
#include "util/result.h"

namespace shapcq {

/// Eviction and concurrency knobs. The byte/count limits apply to resident
/// engines only — open sessions and their databases are never evicted, only
/// their engines.
struct RegistryOptions {
  /// Total ShapleyEngine::ApproxMemoryBytes() allowed across resident
  /// engines; 0 = unlimited. Split evenly across stripes (ceil-share per
  /// stripe); a single engine larger than its stripe's whole share is
  /// evicted at the end of its own request, so the budget holds between
  /// requests (every report on such a session is a rebuild).
  size_t engine_byte_budget = 0;
  /// Maximum number of resident engines; 0 = unlimited. Deterministic across
  /// platforms (byte estimates are not), so CI golden transcripts use this.
  /// Split evenly across stripes like the byte budget.
  size_t max_resident_engines = 0;
  /// Lock stripes sessions are hashed over. 1 (the default) serializes the
  /// whole registry — the script/stdin server and the golden transcripts.
  /// The socket server raises this so distinct sessions mutate and report
  /// in parallel.
  size_t num_stripes = 1;
  /// Admission bound on commands queued behind a stripe's lock: a mutation
  /// or report finding more than this many commands already waiting fails
  /// with "[E_OVERLOAD] ..." instead of blocking (0 = block forever).
  size_t max_stripe_queue = 0;
  /// Refresh a resident engine's byte estimate (and enforce the byte
  /// budget) every this-many deltas on the mutation path, so a delta burst
  /// cannot grow resident_bytes arbitrarily far past the budget between
  /// reports and STATS stays at most this stale (0 = refresh only at
  /// reports). The walk is O(index), hence amortized instead of per delta.
  size_t refresh_every_deltas = 8;
  /// Reject inserts that would grow a session past this many live facts
  /// with "[E_FACT_CAP] ..." (0 = unlimited). Enforced under the stripe
  /// lock, so the cap is race-free under concurrent clients.
  size_t max_session_facts = 0;
  /// Per-session bound on cached approx report tables (one per distinct
  /// ApproxSpec cache key; least-recently-served evicted beyond the bound;
  /// 0 = approx reports are never cached). The exact table cache is
  /// separate — it rides with the resident engine, as before.
  size_t max_approx_cached_reports = 4;
  /// Numeric core for every engine this registry builds (first builds and
  /// rebuild-on-readmission alike). kTree is the pointer-linked oracle
  /// behind the servers' --engine=tree escape hatch; reports are
  /// bit-identical on either core.
  EngineCore engine_core = EngineCore::kArena;
};

/// Registry-wide counters, reported by the STATS command.
struct RegistryStats {
  size_t open_sessions = 0;
  size_t resident_engines = 0;
  size_t resident_bytes = 0;  ///< sum of resident engines' last estimates
                              ///< (at most refresh_every_deltas stale)
  size_t report_hits = 0;     ///< reports served by an already-resident engine
  size_t report_cache_hits = 0;  ///< hits served straight from a report
                                 ///< cache entry, exact or approx (no delta
                                 ///< since that entry was ranked)
  size_t report_misses = 0;   ///< reports that had to (re)build the engine
  size_t evictions = 0;       ///< engines dropped by budget/cap pressure
  size_t engine_builds = 0;   ///< total Build() calls (first builds + rebuilds)
  size_t overloads = 0;       ///< commands rejected by the stripe queue bound
  size_t approx_reports = 0;  ///< reports served by the sampling tier
  size_t deadline_exceeded = 0;   ///< reports whose deadline (or caller
                                  ///< token) expired, degraded or not
  size_t degraded_to_approx = 0;  ///< deadline expiries answered by the
                                  ///< sampling tier (on_deadline=approx)
  size_t inflight = 0;        ///< gauge: reports executing right now (0 in
                              ///< any serial transcript — goldenable)
  size_t cached_exact_tables = 0;   ///< gauge: resident exact report caches
  size_t cached_approx_tables = 0;  ///< gauge: resident approx report caches
                                    ///< (both summed across sessions, so
                                    ///< eviction behavior is observable
                                    ///< per tier)
};

/// Per-session counters and state, reported by "STATS <session>".
struct SessionStats {
  size_t fact_count = 0;
  size_t endo_count = 0;
  size_t deltas_applied = 0;
  size_t reports_served = 0;
  size_t engine_builds = 0;  ///< builds for this session, rebuilds included
  bool engine_resident = false;
  size_t engine_bytes = 0;  ///< last estimate (refreshed at builds, computed
                            ///< reports, and every refresh_every_deltas
                            ///< mutations); 0 while not resident
  bool exact_capable = true;  ///< false = approx-only session (safe,
                              ///< self-join-free, but non-hierarchical)
  size_t cached_exact_tables = 0;   ///< 0 or 1
  size_t cached_approx_tables = 0;  ///< bounded by max_approx_cached_reports
  size_t deadline_exceeded = 0;     ///< this session's expired reports
};

/// What a mutation did, captured under the stripe lock so callers can print
/// a consistent acknowledgment without re-reading the session.
struct MutationOutcome {
  FactId fact = kNoFact;
  size_t fact_count = 0;
  size_t endo_count = 0;
};

/// A report rendered to protocol text under the stripe lock (the socket
/// path: the session may mutate again the instant the lock drops).
struct RenderedReport {
  size_t rows = 0;
  size_t endo_count = 0;
  std::string text;  ///< RenderReport() of the served table
};

/// Session store with striped locking and per-stripe LRU engine eviction.
class EngineRegistry {
 public:
  explicit EngineRegistry(const RegistryOptions& options);
  EngineRegistry();
  ~EngineRegistry();
  EngineRegistry(EngineRegistry&&) noexcept;
  EngineRegistry& operator=(EngineRegistry&&) noexcept;

  /// Opens a session with an empty database. Fails on a duplicate id or a
  /// query the evaluator cannot serve at all (unsafe negation, self-join).
  /// Safe self-join-free queries OUTSIDE the hierarchical fragment are
  /// accepted as approx-only sessions: mutations work as usual, and reports
  /// must carry an ApproxSpec (the sampling tier) — an exact report request
  /// fails with the classification reason. Returns whether the session is
  /// exact-capable (true = hierarchical, the incremental engine applies).
  Result<bool> Open(const std::string& session_id, const CQ& query);

  /// True if the session is open.
  bool Has(const std::string& session_id) const;

  /// Applies one mutation to the session's database: through the resident
  /// engine when there is one, directly otherwise. Error surfaces are
  /// identical either way (duplicate insert, arity mismatch against schema
  /// or query atom, delete of an absent fact). Returns the inserted or
  /// removed FactId.
  Result<FactId> ApplyMutation(const std::string& session_id,
                               const MutationSpec& mutation);

  /// ApplyMutation with the session's stripe lock held across two extra
  /// steps: `write_ahead` (nullable) runs after the session and fact-cap
  /// checks but before the mutation applies — a failure aborts the command
  /// with its error tagged "[E_LOG_IO]" (the WAL append point: the record
  /// is durable before the apply, and apply-time failures replay as
  /// identical no-ops). `post_apply` (nullable) runs after a successful
  /// apply with the mutated database (the auto-compaction point). Both
  /// callbacks execute under the stripe lock, so log order == apply order
  /// per session even with concurrent clients.
  Result<MutationOutcome> Mutate(
      const std::string& session_id, const MutationSpec& mutation,
      const std::function<Result<bool>()>* write_ahead,
      const std::function<void(const Database&)>* post_apply);

  /// Ranked attribution table of the session's current database. Ensures the
  /// engine is resident (building it on a miss), marks the session most
  /// recently used, then enforces the eviction policy. While the engine is
  /// resident, the full ranked table is cached per mutation epoch: repeated
  /// reports with no intervening delta are served from the cache (the
  /// steady-state polling path), with options.top_k applied per serve. The
  /// cache is dropped with the engine on eviction. Reports are bit-identical
  /// whether served from the cache, a warm engine, a fresh build, or a
  /// rebuild after an eviction.
  ///
  /// With options.approx enabled the sampling tier serves instead whenever
  /// the session is approx-only or approx.force is set (exact-capable
  /// sessions otherwise keep their exact path — auto-dispatch). Approx
  /// tables are cached per (ApproxSpec key, mutation epoch) beside the
  /// exact entry, bounded by max_approx_cached_reports with
  /// least-recently-served eviction; they need no resident engine and
  /// survive engine eviction. Fixed (spec, database) pairs reproduce
  /// bit-identically, cached or recomputed, at any thread count.
  ///
  /// Deadlines: options.deadline_ms (or a caller-owned options.cancel
  /// token) bounds the report. Expiry yields the structured [E_DEADLINE]
  /// error — or, with options.on_deadline = kApprox on an exact-capable
  /// session, a prompt work-bounded sampling answer (never cached: it is a
  /// deadline artifact, not a requested spec). Either way the session is
  /// left fully consistent — partial engine work is value-preserving, the
  /// stripe byte accounting is re-enforced, and the next undeadlined
  /// report is bit-identical to a fresh engine's.
  Result<AttributionReport> Report(const std::string& session_id,
                                   const ReportOptions& options);

  /// Report() plus RenderReport(), all under the stripe lock — the socket
  /// path, where the database must not mutate between ranking and
  /// rendering.
  Result<RenderedReport> ReportRendered(const std::string& session_id,
                                        const ReportOptions& options);

  /// Closes the session, dropping its database and engine. A close is not an
  /// eviction (the stream ended; nothing will be readmitted).
  Result<bool> Close(const std::string& session_id);

  /// Runs `fn` on the session's database under the stripe lock (the
  /// SNAPSHOT path: compaction must see a frozen fact table). Errors if the
  /// session is not open.
  Result<bool> VisitDatabase(
      const std::string& session_id,
      const std::function<void(const Database&)>& fn) const;

  /// The session's database (for rendering reports); nullptr if not open.
  /// Single-writer callers only (tests, benches): the pointer is read
  /// outside any lock, so it must not race concurrent Close/Open.
  const Database* FindDatabase(const std::string& session_id) const;

  Result<SessionStats> Stats(const std::string& session_id) const;
  RegistryStats stats() const;

  /// Open session ids, in OPEN order.
  std::vector<std::string> SessionIds() const;

 private:
  struct Session;
  struct Stripe;
  struct Impl;
  std::unique_ptr<Impl> impl_;
};

}  // namespace shapcq

#endif  // SHAPCQ_SERVICE_ENGINE_REGISTRY_H_
