// Safe-plan compilation and plan-driven probabilistic evaluation — the
// third, independently structured implementation of the hierarchical
// algorithm, tested against lifted inference and world enumeration.

#include "core/plan.h"

#include <gtest/gtest.h>

#include <tuple>

#include "datasets/query_gen.h"
#include "datasets/synthetic.h"
#include "datasets/university.h"
#include "probdb/lifted.h"
#include "query/parser.h"

namespace shapcq {
namespace {

TEST(PlanTest, CompilesHierarchicalOnly) {
  EXPECT_TRUE(CompileSafePlan(UniversityQ1()).ok());
  EXPECT_FALSE(CompileSafePlan(UniversityQ2()).ok());
  EXPECT_FALSE(CompileSafePlan(MustParseCQ("q() :- R(x), S(x,y), T(y)")).ok());
  EXPECT_FALSE(CompileSafePlan(MustParseCQ("q() :- R(x), not S(x,y)")).ok());
  EXPECT_FALSE(
      CompileSafePlan(MustParseCQ("q() :- R(x), S(x,y), not R(y)")).ok());
}

TEST(PlanTest, ExplainShowsStructure) {
  auto plan = CompileSafePlan(UniversityQ1());
  ASSERT_TRUE(plan.ok());
  const std::string text = ExplainPlan(*plan.value());
  // q1 = Stud(x), ¬TA(x), Reg(x,y): project on x, then join of two ground
  // leaves and a projection on y.
  EXPECT_EQ(text.find("project[x]"), 0u) << text;
  EXPECT_NE(text.find("join"), std::string::npos) << text;
  EXPECT_NE(text.find("leaf: Stud("), std::string::npos) << text;
  EXPECT_NE(text.find("leaf: not TA("), std::string::npos) << text;
  EXPECT_NE(text.find("project[y]"), std::string::npos) << text;
}

TEST(PlanTest, DisconnectedQueryStartsWithJoin) {
  auto plan = CompileSafePlan(MustParseCQ("q() :- R(x), S(y)"));
  ASSERT_TRUE(plan.ok());
  EXPECT_EQ(plan.value()->kind, SafePlan::Kind::kIndependentJoin);
  EXPECT_EQ(plan.value()->children.size(), 2u);
  const std::string text = ExplainPlan(*plan.value());
  EXPECT_EQ(text.find("join"), 0u) << text;
}

TEST(PlanTest, GroundQueryIsLeaf) {
  auto plan = CompileSafePlan(MustParseCQ("q() :- R('a')"));
  ASSERT_TRUE(plan.ok());
  EXPECT_EQ(plan.value()->kind, SafePlan::Kind::kAtomLeaf);
}

TEST(PlanTest, ProbabilityMatchesHandComputation) {
  ProbDatabase pdb;
  pdb.AddFact("R", {V("pl1")}, 0.5);
  pdb.AddFact("R", {V("pl2")}, 0.5);
  pdb.AddFact("S", {V("pl1")}, 0.25);
  CQ q = MustParseCQ("q() :- R(x), not S(x)");
  const double expected = 1.0 - (1.0 - 0.5 * 0.75) * (1.0 - 0.5);
  EXPECT_NEAR(PlanProbability(q, pdb).value(), expected, 1e-12);
}

using PlanSweepParam = std::tuple<const char*, int>;

class PlanSweep : public ::testing::TestWithParam<PlanSweepParam> {};

TEST_P(PlanSweep, MatchesLiftedAndEnumeration) {
  const CQ q = MustParseCQ(std::get<0>(GetParam()));
  Rng rng(static_cast<uint64_t>(std::get<1>(GetParam())) * 179424673 + 41);
  SyntheticOptions options;
  options.domain_size = 3;
  options.facts_per_relation = 3;
  ProbDatabase pdb = RandomProbDatabaseForQuery(q, {}, options, &rng);
  auto via_plan = PlanProbability(q, pdb);
  ASSERT_TRUE(via_plan.ok()) << via_plan.error();
  EXPECT_NEAR(via_plan.value(), LiftedProbability(q, pdb).value(), 1e-9);
  EXPECT_NEAR(via_plan.value(), pdb.ProbabilityBruteForce(q), 1e-9);
}

INSTANTIATE_TEST_SUITE_P(
    HierarchicalShapes, PlanSweep,
    ::testing::Combine(
        ::testing::Values("q() :- R(x)",
                          "q() :- R(x), not S(x)",
                          "q1() :- Stud(x), not TA(x), Reg(x,y)",
                          "q() :- R(x,y), S(x,y), T(x)",
                          "q() :- R(x), S(y)",
                          "q() :- E(x,x), not F(x)",
                          "q() :- A(x), B(x,y), C(x,y,z), not D(x,y,z)"),
        ::testing::Range(0, 5)));

class GeneratedPlanSweep : public ::testing::TestWithParam<int> {};

TEST_P(GeneratedPlanSweep, MatchesEnumerationOnGeneratedQueries) {
  Rng rng(static_cast<uint64_t>(GetParam()) * 217645199 + 43);
  QueryGenOptions gen_options;
  gen_options.max_depth = 2;
  const CQ q = RandomHierarchicalCq(gen_options, &rng);
  SyntheticOptions options;
  options.domain_size = 2;
  options.facts_per_relation = 2;
  ProbDatabase pdb = RandomProbDatabaseForQuery(q, {}, options, &rng);
  if (pdb.probabilistic_count() > 16) GTEST_SKIP();
  auto via_plan = PlanProbability(q, pdb);
  ASSERT_TRUE(via_plan.ok()) << via_plan.error() << "\n" << q.ToString();
  EXPECT_NEAR(via_plan.value(), pdb.ProbabilityBruteForce(q), 1e-9)
      << q.ToString();
}

INSTANTIATE_TEST_SUITE_P(Seeds, GeneratedPlanSweep, ::testing::Range(0, 20));

}  // namespace
}  // namespace shapcq
