#include "reductions/bipartite.h"

#include "util/check.h"

namespace shapcq {

bool BipartiteGraph::HasIsolatedVertex() const {
  std::vector<bool> left_touched(static_cast<size_t>(left), false);
  std::vector<bool> right_touched(static_cast<size_t>(right), false);
  for (const auto& [a, b] : edges) {
    left_touched[static_cast<size_t>(a)] = true;
    right_touched[static_cast<size_t>(b)] = true;
  }
  for (bool touched : left_touched) {
    if (!touched) return true;
  }
  for (bool touched : right_touched) {
    if (!touched) return true;
  }
  return false;
}

BipartiteGraph RandomBipartite(int left, int right, double edge_probability,
                               Rng* rng) {
  SHAPCQ_CHECK(left >= 1 && right >= 1);
  BipartiteGraph graph;
  graph.left = left;
  graph.right = right;
  std::vector<std::vector<bool>> present(
      static_cast<size_t>(left), std::vector<bool>(right, false));
  for (int a = 0; a < left; ++a) {
    for (int b = 0; b < right; ++b) {
      if (rng->Bernoulli(edge_probability)) present[a][b] = true;
    }
  }
  // Give every isolated vertex one random edge.
  for (int a = 0; a < left; ++a) {
    bool touched = false;
    for (int b = 0; b < right; ++b) touched |= present[a][b];
    if (!touched) present[a][rng->UniformInt(static_cast<uint64_t>(right))] =
        true;
  }
  for (int b = 0; b < right; ++b) {
    bool touched = false;
    for (int a = 0; a < left; ++a) touched |= present[a][b];
    if (!touched) {
      present[rng->UniformInt(static_cast<uint64_t>(left))][b] = true;
    }
  }
  for (int a = 0; a < left; ++a) {
    for (int b = 0; b < right; ++b) {
      if (present[a][b]) graph.edges.push_back({a, b});
    }
  }
  return graph;
}

BigInt CountIndependentSetsBruteForce(const BipartiteGraph& graph) {
  const int n = graph.TotalVertices();
  SHAPCQ_CHECK_MSG(n <= 26, "IS enumeration beyond 2^26 is a bug");
  BigInt count(0);
  const uint64_t subsets = uint64_t{1} << n;
  for (uint64_t mask = 0; mask < subsets; ++mask) {
    bool independent = true;
    for (const auto& [a, b] : graph.edges) {
      const bool a_in = (mask >> a) & 1;
      const bool b_in = (mask >> (graph.left + b)) & 1;
      if (a_in && b_in) {
        independent = false;
        break;
      }
    }
    if (independent) count += BigInt(1);
  }
  return count;
}

std::vector<BigInt> CountClosedSubsetsBruteForce(const BipartiteGraph& graph) {
  const int n = graph.TotalVertices();
  SHAPCQ_CHECK_MSG(n <= 26, "closed-subset enumeration beyond 2^26 is a bug");
  std::vector<BigInt> counts(static_cast<size_t>(n) + 1, BigInt(0));
  const uint64_t subsets = uint64_t{1} << n;
  for (uint64_t mask = 0; mask < subsets; ++mask) {
    bool closed = true;
    for (const auto& [a, b] : graph.edges) {
      const bool a_in = (mask >> a) & 1;
      const bool b_in = (mask >> (graph.left + b)) & 1;
      if (a_in && !b_in) {
        closed = false;
        break;
      }
    }
    if (closed) counts[static_cast<size_t>(__builtin_popcountll(mask))] +=
        BigInt(1);
  }
  return counts;
}

}  // namespace shapcq
