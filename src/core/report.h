// Attribution reports: the user-facing summary layer over the Shapley
// engines. Computes values for all endogenous facts with the best
// applicable algorithm, ranks them, and renders a fixed-width table.

#ifndef SHAPCQ_CORE_REPORT_H_
#define SHAPCQ_CORE_REPORT_H_

#include <cstdint>
#include <string>
#include <vector>

#include "core/approx_engine.h"
#include "core/shapley_engine.h"
#include "db/database.h"
#include "query/analysis.h"
#include "query/cq.h"
#include "util/rational.h"
#include "util/result.h"

namespace shapcq {

/// One fact's attribution. The confidence fields are meaningful only on
/// approximate reports (AttributionReport::approximate): the true Shapley
/// value lies within ci_radius of `value`, jointly over all rows, with
/// probability at least 1 - delta.
struct Attribution {
  FactId fact = kNoFact;
  Rational value;
  double ci_radius = 0.0;  // 0 on exact reports
  size_t samples = 0;      // 0 on exact reports and provably-zero rows
};

/// Provenance of an approximate report (AttributionReport::approx).
struct ApproxReportInfo {
  double epsilon = 0.0;
  double delta = 0.0;
  uint64_t seed = 0;
  size_t samples_per_orbit = 0;
  size_t samples_total = 0;
  size_t orbit_count = 0;      ///< symmetry orbits over the endo facts
  size_t sampled_orbits = 0;   ///< orbits that drew samples (rest are
                               ///< provably zero)
  bool budget_capped = false;  ///< max_samples cut the Hoeffding count
                               ///< (intervals widen accordingly)
  std::string orbit_source;    ///< "engine" or "signature"
  std::string dispatch_reason; ///< classifier verdict that routed here
};

/// A full attribution of a query answer to the endogenous facts.
struct AttributionReport {
  std::vector<Attribution> rows;  // sorted by descending value
  std::string engine;             // "CntSat", "ExoShap", "approx-fpras" or
                                  // "brute-force"
  Rational total;                 // = q(D) − q(Dx) by efficiency (for
                                  // approx: the sum of the estimates)
  bool approximate = false;       // rows carry (ci_radius, samples)
  ApproxReportInfo approx;        // populated iff `approximate`
};

/// Options for BuildAttributionReport.
struct ReportOptions {
  ExoRelations exo;               // all-exogenous relations, if known
  bool allow_brute_force = false; // permit the exponential fallback
  size_t brute_force_limit = 20;  // max |Dn| for the fallback
  size_t num_threads = 1;         // worker threads for the all-facts engines
                                  // (1 = serial, 0 = hardware concurrency);
                                  // values are identical at any setting
  size_t top_k = 0;               // keep only the k highest-ranked rows
                                  // (0 = all); `total` stays the full
                                  // efficiency total either way
  ApproxSpec approx;              // sampling tier: disabled unless
                                  // approx.enabled(); with approx.force the
                                  // sampler runs even on tractable queries
  EngineCore engine_core =        // numeric core for ShapleyEngine builds
      EngineCore::kArena;         // (kTree = the differential oracle;
                                  // values are bit-identical either way)
};

/// Computes Shapley values for every endogenous fact, choosing CntSat for
/// hierarchical queries, ExoShap when `options.exo` removes all
/// non-hierarchical paths, the sampling tier when `options.approx` is
/// enabled (the only engine for FP^#P-hard queries beyond the brute-force
/// limit; with approx.force it preempts the exact engines too), and (only
/// if allowed) brute force otherwise. Returns an error when no permitted
/// engine applies.
Result<AttributionReport> BuildAttributionReport(const CQ& q,
                                                 const Database& db,
                                                 const ReportOptions& options);

/// Attribution table served from a live (possibly mutated) ShapleyEngine:
/// the long-lived-service path, where the index is maintained incrementally
/// by InsertFact/DeleteFact instead of rebuilt per report. `db` must be the
/// database the engine was built on and has been mutating.
AttributionReport BuildAttributionReportFromEngine(
    ShapleyEngine& engine, const Database& db, const ReportOptions& options);

/// Fixed-width text rendering of a report (fact, exact value, decimal).
/// Approximate reports add an "approx:" provenance line and per-row
/// confidence columns; exact reports render byte-identically to before the
/// sampling tier existed.
std::string RenderReport(const AttributionReport& report, const Database& db);

}  // namespace shapcq

#endif  // SHAPCQ_CORE_REPORT_H_
