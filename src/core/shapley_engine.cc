#include "core/shapley_engine.h"

#include <algorithm>
#include <map>
#include <mutex>
#include <optional>
#include <set>
#include <string>
#include <unordered_map>
#include <utility>

#include "core/atom_pattern.h"
#include "core/count_sat.h"
#include "core/engine_arena.h"
#include "core/shapley.h"
#include "query/analysis.h"
#include "util/cancel.h"
#include "util/check.h"
#include "util/combinatorics.h"
#include "util/thread_pool.h"

namespace shapcq {

namespace {

// Per-atom lists of arena indices: the recursion's working set. Slicing
// copies 32-bit indices, never Tuples.
using IndexLists = std::vector<std::vector<uint32_t>>;

}  // namespace

// ---------------------------------------------------------------------------
// Engine state
// ---------------------------------------------------------------------------

struct ShapleyEngine::Impl {
  // One node of the memoized CntSat recursion tree. Beyond the memoized
  // counts, every node carries the routing metadata incremental maintenance
  // needs to steer an inserted fact from the root to its leaf (or to build a
  // fresh subtree for a root value the database has not seen before).
  struct Node {
    enum class Kind { kGround, kComponent, kRootVar };
    Kind kind = Kind::kGround;
    int parent = -1;       // node id, -1 for the root
    int child_index = -1;  // position within parent's children
    std::vector<int> children;
    size_t free_endo = 0;  // kRootVar: endo facts inconsistent at the root var
    bool negated = false;  // kGround: the atom's polarity
    CountVector sat = CountVector::Zero(0);  // memoized |Sat| of this subtree
    int sig = -1;          // hash-consed structural signature
    // Lazily built: context[j] = convolution of all children's combine
    // vectors except child j (sat for kComponent, unsat for kRootVar).
    std::vector<CountVector> context;
    // Persistent partial products backing both the context table and the
    // mutation patches: prefix[i] = combine[0] ⊛ … ⊛ combine[i-1], valid for
    // i <= prefix_valid; suffix[i] = combine[i] ⊛ … ⊛ combine[m-1], valid
    // for i >= suffix_valid (prefix[0] and suffix[m] are the identity).
    // A patch of child j consumes prefix[j] ⊛ suffix[j+1] and then shrinks
    // the watermarks to exclude stale entries embedding j's old vector —
    // so a steady stream of deltas along one path costs O(1) convolutions
    // per ancestor instead of O(children).
    std::vector<CountVector> prefix, suffix;
    size_t prefix_valid = 0;
    size_t suffix_valid = 0;

    // --- incremental-maintenance state ---
    // kRootVar: sat before the All(free_endo) factor. Kept so free-count
    // changes and new-child splices re-derive sat without re-convolving all
    // children (complementing core recovers the product of child unsats).
    CountVector core_sat;
    // kGround: presence state of the leaf's (unique) matching fact.
    GroundFactState leaf_state = GroundFactState::kAbsent;
    // kGround: original atom index this leaf grounds.
    size_t atom_id = 0;
    // kRootVar: the slicing variable and, per local atom, its positions.
    VarId root_var = -1;
    std::vector<std::vector<size_t>> root_positions;
    // kRootVar: root value id -> child node (the slice map, kept live).
    std::map<int32_t, int> child_by_value;
    // kRootVar: the node's pre-slicing subquery and local->original atom
    // indices, for building subtrees of unseen root values.
    CQ subquery;
    std::vector<size_t> atom_ids;
    // kComponent: original atom index -> child owning that atom.
    std::unordered_map<size_t, int> child_by_atom;
  };

  // An atom of the query, precompiled for fact matching. Relations are
  // matched by name: a relation may enter the schema only after Build (the
  // first insert into a previously fact-free relation declares it) — which
  // is also why the atom's arity is kept, to validate such inserts before
  // the schema can.
  struct QueryAtom {
    std::string relation;
    size_t arity = 0;
    AtomPattern pattern;
  };

  const Database* db = nullptr;
  size_t endo_count = 0;
  size_t global_free_endo = 0;  // endo facts matching no atom pattern
  std::vector<Node> nodes;
  int root = -1;
  CountVector baseline = CountVector::Zero(0);
  std::vector<QueryAtom> atoms;

  // Numeric core. With kArena every count vector (memoized sat/core_sat,
  // partial products, evaluation state) lives in the flat arena and the tree
  // nodes above keep routing metadata only — their CountVector members stay
  // [1] identities after the compile step moves the cells out. With kTree
  // the arena stays empty and the node vectors are authoritative (the
  // original implementation, kept as the differential oracle).
  EngineCore core = EngineCore::kArena;
  EngineArena arena;

  // Shared fact arena: matched facts as indices, queried via *db. Append-
  // only; entries of deleted facts go stale but are never referenced again
  // (leaves and slices are patched to forget them).
  std::vector<FactId> arena_fact;
  std::vector<bool> arena_endo;

  // Per endogenous fact (endo-index order): its ground leaf (-1 for null
  // players) and its orbit key — the hash-consed signatures along the
  // leaf-to-root path. Null players get the empty key. Mutations keep
  // leaf_of_endo exact and regenerate the keys lazily (orbit_keys_dirty).
  std::vector<int> leaf_of_endo;
  std::vector<std::vector<int>> orbit_key_of_endo;
  bool orbit_keys_dirty = false;

  // Where each fact lives in the index: its ground leaf (matched facts), or
  // the kRootVar node counting it as free (endogenous inconsistent facts).
  // Endogenous facts in neither map are globally free; exogenous facts in
  // neither map have no effect on any count.
  std::unordered_map<FactId, int> leaf_of_fact;
  std::unordered_map<FactId, int> free_node_of_fact;

  std::unordered_map<std::string, int> sig_interner;
  std::map<std::vector<int>, Rational> orbit_values;  // memoized per orbit
  Stats stats;

  // Build-time cancellation: set only for the duration of Build()'s
  // BuildNode recursion (incremental subtree builds inside a mutation are
  // never cancelled — each mutation is atomic w.r.t. cancellation). Once
  // the token expires, build_cancelled makes every remaining recursion step
  // return a placeholder leaf immediately, so the unwind is prompt; Build()
  // then discards the whole engine.
  const CancelToken* build_cancel = nullptr;
  bool build_cancelled = false;

  // One flag per node, allocated before the first parallel fan-out: workers
  // racing to EnsureContexts on a shared ancestor serialize through
  // call_once, which also publishes the built vectors to the losers. Null
  // until a parallel query happens; the serial path never pays for it.
  // Mutations reset it (flags are single-use), so the next parallel query
  // re-allocates flags covering any nodes the mutation added.
  std::unique_ptr<std::vector<std::once_flag>> context_once;

  int Intern(const std::string& canonical) {
    return sig_interner
        .emplace(canonical, static_cast<int>(sig_interner.size()))
        .first->second;
  }

  int AddNode(Node node) {
    nodes.push_back(std::move(node));
    return static_cast<int>(nodes.size()) - 1;
  }

  int BuildNode(const CQ& q, IndexLists lists,
                const std::vector<size_t>& atom_ids);
  void AbsorbNodeIntoArena(int node_id);
  void ResignNode(int node_id);
  CountVector CombineOf(const Node& parent, int child_id) const;
  void EnsurePartials(int node_id);
  const CountVector& PrefixUpTo(int node_id, size_t j);
  const CountVector& SuffixFrom(int node_id, size_t i);
  void EnsureContexts(int node_id);
  void EnsureContextsFor(int node_id);
  CountVector SiblingCombine(int parent_id, size_t j);
  void MarkChildDirty(Node& parent, size_t j);
  CountVector PropagateToRoot(int leaf, CountVector vec);
  Rational ValueAtLeaf(int leaf);
  const Rational& OrbitValue(size_t endo_index);
  void RefreshOrbitKeysIfDirty();
  void ApplyInsert(FactId fact);
  void RouteInsert(int node_id, uint32_t arena_index, size_t atom_id);
  void ApplyDelete(FactId fact, bool endo, size_t endo_idx);
  void PatchAncestors(int dirty);
  void FinishMutation();
};

// ---------------------------------------------------------------------------
// Structural signatures (hash-consed; recomputed along dirtied paths)
// ---------------------------------------------------------------------------

// Re-derives the node's canonical signature from its current state and its
// children's (already current) signatures, and interns it. Used both by the
// initial bottom-up build and by mutation patches walking a dirty path.
void ShapleyEngine::Impl::ResignNode(int node_id) {
  Node& node = nodes[node_id];
  std::string canonical;
  switch (node.kind) {
    case Node::Kind::kGround:
      canonical = "G|" + std::to_string(node.negated ? 1 : 0) + "|" +
                  std::to_string(static_cast<int>(node.leaf_state));
      break;
    case Node::Kind::kComponent:
    case Node::Kind::kRootVar: {
      std::vector<int> child_sigs;
      child_sigs.reserve(node.children.size());
      for (int child : node.children) child_sigs.push_back(nodes[child].sig);
      std::sort(child_sigs.begin(), child_sigs.end());
      canonical = node.kind == Node::Kind::kComponent
                      ? "C"
                      : "R|f" + std::to_string(node.free_endo);
      for (int sig : child_sigs) canonical += "|" + std::to_string(sig);
      break;
    }
  }
  node.sig = Intern(canonical);
}

// ---------------------------------------------------------------------------
// Tree construction (mirrors CoreCount in count_sat.cc; runs at Build and,
// incrementally, whenever an insert opens a subtree for an unseen root value)
// ---------------------------------------------------------------------------

int ShapleyEngine::Impl::BuildNode(const CQ& q, IndexLists lists,
                                   const std::vector<size_t>& atom_ids) {
  SHAPCQ_CHECK(q.atom_count() == lists.size());
  SHAPCQ_CHECK(q.atom_count() == atom_ids.size());

  // Cancelled build: synthesize an inert leaf so every pending ancestor
  // finishes constructing with its invariants intact (Build() throws the
  // whole tree away afterwards). Numeric content is irrelevant — no value
  // is ever served from a cancelled build.
  if (build_cancel != nullptr &&
      (build_cancelled || build_cancel->Expired())) {
    build_cancelled = true;
    Node node;
    node.kind = Node::Kind::kGround;
    node.sat = GroundLeafSat(/*negated=*/false, GroundFactState::kAbsent);
    const int id = AddNode(std::move(node));
    ResignNode(id);
    return id;
  }

  // Disconnected subquery: one child per variable-connected component.
  const auto components = AtomComponents(q);
  if (components.size() > 1) {
    std::vector<int> children;
    std::unordered_map<size_t, int> child_by_atom;
    for (const auto& component : components) {
      CQ sub = q.Restrict(component);
      IndexLists sub_lists;
      std::vector<size_t> sub_atom_ids;
      sub_lists.reserve(component.size());
      sub_atom_ids.reserve(component.size());
      for (size_t index : component) {
        sub_lists.push_back(std::move(lists[index]));
        sub_atom_ids.push_back(atom_ids[index]);
      }
      const int child = BuildNode(sub, std::move(sub_lists), sub_atom_ids);
      for (size_t index : component) {
        child_by_atom[atom_ids[index]] = child;
      }
      children.push_back(child);
    }
    Node node;
    node.kind = Node::Kind::kComponent;
    node.children = children;
    node.child_by_atom = std::move(child_by_atom);
    node.sat = CountVector();  // identity of Convolve
    for (int child : children) {
      node.sat.ConvolveWith(nodes[child].sat);
    }
    const int id = AddNode(std::move(node));
    for (size_t i = 0; i < children.size(); ++i) {
      nodes[children[i]].parent = id;
      nodes[children[i]].child_index = static_cast<int>(i);
    }
    ResignNode(id);
    return id;
  }

  if (q.UsedVars().empty()) {
    // Connected and variable-free: a single ground atom (Lemma 3.2 base
    // case, extended for negation).
    SHAPCQ_CHECK(q.atom_count() == 1);
    const std::vector<uint32_t>& list = lists[0];
    SHAPCQ_CHECK_MSG(list.size() <= 1,
                     "ground atom with more than one matching fact");
    Node node;
    node.kind = Node::Kind::kGround;
    node.negated = q.atom(0).negated;
    node.atom_id = atom_ids[0];
    node.leaf_state = GroundFactState::kAbsent;
    if (!list.empty()) {
      node.leaf_state = arena_endo[list[0]] ? GroundFactState::kEndogenous
                                            : GroundFactState::kExogenous;
    }
    node.sat = GroundLeafSat(node.negated, node.leaf_state);
    const int id = AddNode(std::move(node));
    ResignNode(id);
    if (!list.empty()) {
      const FactId fact = arena_fact[list[0]];
      leaf_of_fact[fact] = id;
      if (arena_endo[list[0]]) leaf_of_endo[db->endo_index(fact)] = id;
    }
    return id;
  }

  // Connected with variables: slice by the root variable's value.
  std::optional<VarId> rootvar = FindRootVariable(q);
  SHAPCQ_CHECK_MSG(rootvar.has_value(),
                   "connected hierarchical subquery lacks a root variable");

  std::vector<std::vector<size_t>> root_positions(q.atom_count());
  for (size_t i = 0; i < q.atom_count(); ++i) {
    const Atom& atom = q.atom(i);
    for (size_t pos = 0; pos < atom.terms.size(); ++pos) {
      if (atom.terms[pos].IsVar() && atom.terms[pos].var == *rootvar) {
        root_positions[i].push_back(pos);
      }
    }
    SHAPCQ_CHECK(!root_positions[i].empty());
  }

  // Facts with unequal values at the root positions can join nothing: free.
  // Their endogenous members are null players — they stay leaf-less and the
  // node only remembers their count (an All(free_endo) convolution factor).
  std::map<int32_t, IndexLists> slices;
  size_t free_endo = 0;
  std::vector<FactId> free_facts;
  for (size_t i = 0; i < q.atom_count(); ++i) {
    for (uint32_t index : lists[i]) {
      const Tuple& tuple = db->tuple_of(arena_fact[index]);
      // shapcq::Value spelled out: inside ShapleyEngine's scope the bare
      // name resolves to the Value() member function.
      const shapcq::Value root_value = tuple[root_positions[i][0]];
      bool consistent = true;
      for (size_t pos : root_positions[i]) {
        if (!(tuple[pos] == root_value)) consistent = false;
      }
      if (!consistent) {
        if (arena_endo[index]) {
          ++free_endo;
          free_facts.push_back(arena_fact[index]);
        }
        continue;
      }
      auto [it, inserted] = slices.try_emplace(root_value.id);
      if (inserted) it->second.resize(q.atom_count());
      it->second[i].push_back(index);
    }
  }

  std::vector<int> children;
  std::map<int32_t, int> child_by_value;
  CountVector unsat_all;  // identity; grows over the slice universes
  for (auto& [value_id, slice_lists] : slices) {
    CQ sliced = q.Substitute(*rootvar, shapcq::Value{value_id});
    const int child = BuildNode(sliced, std::move(slice_lists), atom_ids);
    children.push_back(child);
    child_by_value[value_id] = child;
    unsat_all.ConvolveWith(nodes[child].sat.ComplementAgainstAll());
  }

  Node node;
  node.kind = Node::Kind::kRootVar;
  node.children = children;
  node.free_endo = free_endo;
  node.core_sat = CountVector::All(unsat_all.universe_size()) - unsat_all;
  node.sat = node.core_sat.Convolve(CountVector::All(free_endo));
  node.root_var = *rootvar;
  node.root_positions = std::move(root_positions);
  node.child_by_value = std::move(child_by_value);
  node.subquery = q;
  node.atom_ids = atom_ids;
  const int id = AddNode(std::move(node));
  for (size_t i = 0; i < children.size(); ++i) {
    nodes[children[i]].parent = id;
    nodes[children[i]].child_index = static_cast<int>(i);
  }
  ResignNode(id);
  for (FactId fact : free_facts) free_node_of_fact[fact] = id;
  return id;
}

// Compile step for one tree node: metadata is copied into the arena's
// parallel arrays, the numeric vectors are MOVED into the flat cell buffer,
// and the tree node keeps [1] identities in their place (routing metadata —
// slice maps, subqueries, signatures — stays authoritative in the tree).
// Called for every node at Build and for the fresh subtree of an insert.
void ShapleyEngine::Impl::AbsorbNodeIntoArena(int node_id) {
  Node& node = nodes[node_id];
  EngineArena::NodeKind kind = EngineArena::NodeKind::kGround;
  switch (node.kind) {
    case Node::Kind::kGround:
      kind = EngineArena::NodeKind::kGround;
      break;
    case Node::Kind::kComponent:
      kind = EngineArena::NodeKind::kComponent;
      break;
    case Node::Kind::kRootVar:
      kind = EngineArena::NodeKind::kRootVar;
      break;
  }
  // The moves leave hollow CountVectors behind (arena-mode tree nodes are
  // routing metadata only; numerically they are touched just by destruction,
  // assignment and ApproxMemoryBytes, all safe on a hollow vector). Not
  // resetting them to fresh [1] identities keeps the absorb pass free of
  // per-node allocator traffic.
  arena.AppendNode(kind, node.parent, node.child_index, node.children,
                   static_cast<uint32_t>(node.free_endo), node.negated,
                   std::move(node.sat), std::move(node.core_sat));
}

// ---------------------------------------------------------------------------
// Per-fact path re-evaluation
// ---------------------------------------------------------------------------

// combine(i): the vector child i contributes to the parent's product — its
// sat for conjunction (kComponent), its unsat for the "no slice holds"
// product (kRootVar).
CountVector ShapleyEngine::Impl::CombineOf(const Node& parent,
                                           int child_id) const {
  return parent.kind == Node::Kind::kRootVar
             ? nodes[child_id].sat.ComplementAgainstAll()
             : nodes[child_id].sat;
}

// Allocates (or re-sizes after a new-child splice) the partial-product
// arrays. Fresh entries are the Convolve identity; the watermarks mark
// everything else as not-yet-built.
void ShapleyEngine::Impl::EnsurePartials(int node_id) {
  Node& node = nodes[node_id];
  const size_t m = node.children.size();
  if (node.prefix.size() != m + 1) {
    // A grown prefix keeps its valid entries (they exclude the new last
    // child by construction); fresh entries default-construct to the
    // identity, which is exactly prefix[0].
    node.prefix.resize(m + 1);
    node.prefix_valid = std::min(node.prefix_valid, m);
  }
  if (node.suffix.size() != m + 1) {
    // Every old suffix entry misses the newly appended child: rebuild lazily
    // from the identity at the new end.
    node.suffix.assign(m + 1, CountVector());
    node.suffix_valid = m;
  }
}

const CountVector& ShapleyEngine::Impl::PrefixUpTo(int node_id, size_t j) {
  Node& node = nodes[node_id];
  for (size_t i = node.prefix_valid; i < j; ++i) {
    node.prefix[i + 1] =
        node.prefix[i].Convolve(CombineOf(node, node.children[i]));
  }
  node.prefix_valid = std::max(node.prefix_valid, j);
  return node.prefix[j];
}

const CountVector& ShapleyEngine::Impl::SuffixFrom(int node_id, size_t i) {
  Node& node = nodes[node_id];
  for (size_t k = node.suffix_valid; k > i; --k) {
    node.suffix[k - 1] =
        CombineOf(node, node.children[k - 1]).Convolve(node.suffix[k]);
  }
  node.suffix_valid = std::min(node.suffix_valid, i);
  return node.suffix[i];
}

void ShapleyEngine::Impl::EnsureContexts(int node_id) {
  Node& node = nodes[node_id];
  if (!node.context.empty() || node.children.empty()) return;
  const size_t m = node.children.size();
  // prefix[m] and suffix[0] (the full products) are never read by any
  // context[j]; stopping one short skips the two widest convolutions.
  EnsurePartials(node_id);
  PrefixUpTo(node_id, m - 1);
  SuffixFrom(node_id, 1);
  node.context.reserve(m);
  for (size_t j = 0; j < m; ++j) {
    node.context.push_back(node.prefix[j].Convolve(node.suffix[j + 1]));
  }
}

// Thread-aware front door to EnsureContexts: once any parallel query has
// allocated the per-node once_flags, context construction funnels through
// call_once (one builder per node, result published to every waiter). Before
// that, it is the plain serial call.
void ShapleyEngine::Impl::EnsureContextsFor(int node_id) {
  if (context_once != nullptr) {
    std::call_once((*context_once)[node_id],
                   [this, node_id] { EnsureContexts(node_id); });
    return;
  }
  EnsureContexts(node_id);
}

// Product of the combine vectors of every child of `parent_id` EXCEPT child
// j. Reads the memoized context when present (it excludes child j, so it
// survives child j's own mutation); otherwise composes it from the
// persistent prefix/suffix partials — both exclude child j, so after one
// warm-up a steady delta stream along this child costs one convolution here.
CountVector ShapleyEngine::Impl::SiblingCombine(int parent_id, size_t j) {
  if (!nodes[parent_id].context.empty()) return nodes[parent_id].context[j];
  EnsurePartials(parent_id);
  return PrefixUpTo(parent_id, j).Convolve(SuffixFrom(parent_id, j + 1));
}

// Invalidates exactly the cached products that embed child j's replaced
// combine vector: the whole context table, the prefixes past j and the
// suffixes at or before j. prefix[0..j] and suffix[j+1..] exclude j and
// stay warm for the next patch through the same child.
void ShapleyEngine::Impl::MarkChildDirty(Node& parent, size_t j) {
  parent.context.clear();
  if (!parent.prefix.empty()) {
    parent.prefix_valid = std::min(parent.prefix_valid, j);
    parent.suffix_valid = std::max(parent.suffix_valid, j + 1);
  }
}

// Walks a perturbed leaf vector up to the root, re-convolving against the
// memoized sibling products. The returned vector is the full-database |Sat|
// with the leaf's fact forced to the given leaf vector (universe n-1).
CountVector ShapleyEngine::Impl::PropagateToRoot(int leaf, CountVector vec) {
  for (int node = leaf; nodes[node].parent >= 0;) {
    const int parent = nodes[node].parent;
    const int j = nodes[node].child_index;
    EnsureContextsFor(parent);
    const Node& pn = nodes[parent];
    if (pn.kind == Node::Kind::kComponent) {
      vec = pn.context[j].Convolve(vec);
    } else {
      CountVector unsat_all =
          pn.context[j].Convolve(vec.ComplementAgainstAll());
      vec = CountVector::All(unsat_all.universe_size()) - unsat_all;
      if (pn.free_endo > 0) {
        vec.ConvolveWith(CountVector::All(pn.free_endo));
      }
    }
    node = parent;
  }
  if (global_free_endo > 0) {
    vec.ConvolveWith(CountVector::All(global_free_endo));
  }
  return vec;
}

// Shapley value of the fact at `leaf`: re-evaluates the two perturbed
// scenarios (fact exogenous / fact removed) along the single path.
Rational ShapleyEngine::Impl::ValueAtLeaf(int leaf) {
  if (core == EngineCore::kArena) {
    return arena.ValueAtLeaf(leaf, endo_count, global_free_endo);
  }
  const bool negated = nodes[leaf].negated;
  // Forced exogenous: a positive ground atom is always satisfied (All(0)),
  // a negated one always blocked (Zero(0)). Removal is the mirror image.
  CountVector present = CountVector::All(0);
  CountVector absent = CountVector::Zero(0);
  CountVector sat_with = PropagateToRoot(leaf, negated ? absent : present);
  CountVector sat_without = PropagateToRoot(leaf, negated ? present : absent);
  return ShapleyFromSatCounts(sat_with, sat_without, endo_count);
}

// Memoized per-orbit value for the fact at the given endo index (which must
// not be a null player).
const Rational& ShapleyEngine::Impl::OrbitValue(size_t endo_index) {
  const std::vector<int>& key = orbit_key_of_endo[endo_index];
  auto it = orbit_values.find(key);
  if (it == orbit_values.end()) {
    it = orbit_values.emplace(key, ValueAtLeaf(leaf_of_endo[endo_index]))
             .first;
  }
  return it->second;
}

// Mutations re-hash the signatures of the dirtied path but defer key
// regeneration to the next query: one pass over the endogenous facts,
// re-collecting the (partly re-interned) signatures along each leaf-to-root
// path. Pure integer work — no count vector is touched.
void ShapleyEngine::Impl::RefreshOrbitKeysIfDirty() {
  if (!orbit_keys_dirty) return;
  for (size_t e = 0; e < endo_count; ++e) {
    std::vector<int>& key = orbit_key_of_endo[e];
    key.clear();
    for (int node = leaf_of_endo[e]; node >= 0; node = nodes[node].parent) {
      key.push_back(nodes[node].sig);
    }
  }
  orbit_keys_dirty = false;
}

// ---------------------------------------------------------------------------
// Incremental maintenance
// ---------------------------------------------------------------------------

// Re-derives the |Sat| vectors of every ancestor of `dirty` (whose own sat
// and sig the caller has already updated), bottom-up along the single
// root-to-leaf path. Each step convolves the child's new combine vector
// against the sibling product — memoized context when available, direct
// convolution otherwise — so the patch never touches a node off the path.
// The ancestors' context tables are dropped (their other entries embed the
// child's stale vector) and rebuilt lazily by the next query.
void ShapleyEngine::Impl::PatchAncestors(int dirty) {
  for (int node = dirty; nodes[node].parent >= 0;) {
    const int parent = nodes[node].parent;
    const size_t j = static_cast<size_t>(nodes[node].child_index);
    if (core == EngineCore::kArena) {
      arena.PatchChildChanged(parent, j);
    } else {
      CountVector sibling = SiblingCombine(parent, j);
      Node& pn = nodes[parent];
      if (pn.kind == Node::Kind::kComponent) {
        pn.sat = sibling.Convolve(nodes[node].sat);
      } else {
        CountVector unsat_all =
            sibling.Convolve(nodes[node].sat.ComplementAgainstAll());
        pn.core_sat = CountVector::All(unsat_all.universe_size()) - unsat_all;
        pn.sat = pn.core_sat.Convolve(CountVector::All(pn.free_endo));
      }
      MarkChildDirty(pn, j);
    }
    ResignNode(parent);
    node = parent;
  }
  FinishMutation();
}

// Invalidation epilogue of every value-affecting mutation. The player count
// changed (or the root's |Sat| did), so every memoized per-orbit Rational is
// stale even though only one path's count vectors moved; orbit keys
// regenerate lazily. The once-flag vector is single-use and may be
// under-sized after an insert added nodes, so it is dropped and re-allocated
// by the next parallel query.
void ShapleyEngine::Impl::FinishMutation() {
  if (core == EngineCore::kArena) {
    // Every r-vector embeds path products and the All(global_free_endo)
    // root seed; the orbit-id cache keys off the (possibly changed) player
    // set. Both are stale after any value-affecting mutation.
    arena.InvalidateValues();
    baseline = arena.SatOf(root).Convolve(CountVector::All(global_free_endo));
  } else {
    baseline =
        nodes[root].sat.Convolve(CountVector::All(global_free_endo));
  }
  orbit_values.clear();
  orbit_keys_dirty = true;
  context_once.reset();
  endo_count = db->endogenous_count();
  stats.node_count = nodes.size();
  stats.arena_size = arena_fact.size();
  stats.null_player_count = 0;
  for (int leaf : leaf_of_endo) {
    if (leaf < 0) ++stats.null_player_count;
  }
}

// Steers an inserted fact (already in the database and the arena) down the
// tree: through its atom's component, then slice by slice along its root
// values, ending in an existing empty leaf or a freshly built subtree for an
// unseen root value. Exactly one root-to-leaf path is dirtied.
void ShapleyEngine::Impl::RouteInsert(int node_id, uint32_t arena_index,
                                      size_t atom_id) {
  const FactId fact = arena_fact[arena_index];
  switch (nodes[node_id].kind) {
    case Node::Kind::kGround: {
      Node& leaf = nodes[node_id];
      SHAPCQ_CHECK_MSG(leaf.atom_id == atom_id &&
                           leaf.leaf_state == GroundFactState::kAbsent,
                       "insert routed to an occupied ground leaf");
      leaf.leaf_state = arena_endo[arena_index]
                            ? GroundFactState::kEndogenous
                            : GroundFactState::kExogenous;
      if (core == EngineCore::kArena) {
        arena.SetLeafSat(node_id,
                         GroundLeafSat(leaf.negated, leaf.leaf_state));
      } else {
        leaf.sat = GroundLeafSat(leaf.negated, leaf.leaf_state);
      }
      leaf_of_fact[fact] = node_id;
      if (arena_endo[arena_index]) {
        leaf_of_endo[db->endo_index(fact)] = node_id;
      }
      ResignNode(node_id);
      PatchAncestors(node_id);
      return;
    }
    case Node::Kind::kComponent: {
      RouteInsert(nodes[node_id].child_by_atom.at(atom_id), arena_index,
                  atom_id);
      return;
    }
    case Node::Kind::kRootVar:
      break;
  }

  Node& node = nodes[node_id];
  const auto local_it = std::find(node.atom_ids.begin(), node.atom_ids.end(),
                                  atom_id);
  SHAPCQ_CHECK(local_it != node.atom_ids.end());
  const size_t local =
      static_cast<size_t>(local_it - node.atom_ids.begin());
  const std::vector<size_t>& positions = node.root_positions[local];
  const Tuple& tuple = db->tuple_of(fact);
  const shapcq::Value root_value = tuple[positions[0]];
  bool consistent = true;
  for (size_t pos : positions) {
    if (!(tuple[pos] == root_value)) consistent = false;
  }
  if (!consistent) {
    // Unreachable for pattern-matched facts (the atom pattern already
    // enforces equal values at repeated positions), kept to mirror the
    // build-time slicing exactly.
    if (arena_endo[arena_index]) {
      ++node.free_endo;
      if (core == EngineCore::kArena) {
        arena.SetFreeEndo(node_id, static_cast<uint32_t>(node.free_endo));
      } else {
        node.sat = node.core_sat.Convolve(CountVector::All(node.free_endo));
      }
      free_node_of_fact[fact] = node_id;
      ResignNode(node_id);
      PatchAncestors(node_id);
    } else {
      stats.arena_size = arena_fact.size();
    }
    return;
  }
  const auto child_it = node.child_by_value.find(root_value.id);
  if (child_it != node.child_by_value.end()) {
    RouteInsert(child_it->second, arena_index, atom_id);
    return;
  }

  // Unseen root value: the fact opens a new slice. Build its subtree (just
  // this fact in its atom's list; every other atom of the slice is empty)
  // and splice it in as a fresh child.
  CQ sliced = node.subquery.Substitute(node.root_var, root_value);
  IndexLists slice_lists(node.atom_ids.size());
  slice_lists[local].push_back(arena_index);
  const std::vector<size_t> atom_ids_copy = node.atom_ids;
  // BuildNode fills the new subtree's tree-side sat vectors in both modes
  // (its bottom-up math only reads nodes it just built); the arena compile
  // step below then moves them into the flat buffer, node-id order preserved.
  const size_t first_new = nodes.size();
  const int child = BuildNode(sliced, std::move(slice_lists), atom_ids_copy);
  // BuildNode grew the node vector: re-acquire the reference.
  Node& grown = nodes[node_id];
  nodes[child].parent = node_id;
  nodes[child].child_index = static_cast<int>(grown.children.size());
  grown.children.push_back(child);
  grown.child_by_value[root_value.id] = child;
  if (core == EngineCore::kArena) {
    for (size_t id = first_new; id < nodes.size(); ++id) {
      AbsorbNodeIntoArena(static_cast<int>(id));
    }
    arena.SpliceNewChild(node_id, child);
  } else {
    CountVector unsat_all = grown.core_sat.ComplementAgainstAll().Convolve(
        nodes[child].sat.ComplementAgainstAll());
    grown.core_sat = CountVector::All(unsat_all.universe_size()) - unsat_all;
    grown.sat = grown.core_sat.Convolve(CountVector::All(grown.free_endo));
  }
  // The child list grew: the context table is stale, and the next
  // EnsurePartials re-sizes the partial-product arrays (old prefixes stay
  // valid — they exclude the appended child — old suffixes rebuild lazily).
  grown.context.clear();
  ResignNode(node_id);
  PatchAncestors(node_id);
}

// Tree-side half of InsertFact; the fact is already in the database.
void ShapleyEngine::Impl::ApplyInsert(FactId fact) {
  const bool endo = db->is_endogenous(fact);
  if (endo) {
    // Placeholder entries (null player until routing lands in a leaf); the
    // new fact's endo index is by construction the last one.
    leaf_of_endo.push_back(-1);
    orbit_key_of_endo.emplace_back();
  }
  const std::string& relation = db->schema().name(db->relation_of(fact));
  int atom_id = -1;
  for (size_t i = 0; i < atoms.size(); ++i) {
    if (atoms[i].relation == relation &&
        MatchesPattern(atoms[i].pattern, db->tuple_of(fact))) {
      atom_id = static_cast<int>(i);
      break;  // self-join-free: at most one atom per relation
    }
  }
  if (atom_id < 0) {
    // The query cannot see this fact. An endogenous one still dilutes every
    // Shapley value (the player count grew): count it free and invalidate.
    // An exogenous one changes nothing — even the memo stays valid.
    if (endo) {
      ++global_free_endo;
      FinishMutation();
    }
    return;
  }
  const uint32_t arena_index = static_cast<uint32_t>(arena_fact.size());
  arena_fact.push_back(fact);
  arena_endo.push_back(endo);
  RouteInsert(root, arena_index, static_cast<size_t>(atom_id));
}

// Tree-side half of DeleteFact; the fact is already tombstoned in the
// database. `endo`/`endo_idx` describe the fact BEFORE removal.
void ShapleyEngine::Impl::ApplyDelete(FactId fact, bool endo,
                                      size_t endo_idx) {
  if (endo) {
    leaf_of_endo.erase(leaf_of_endo.begin() +
                       static_cast<ptrdiff_t>(endo_idx));
    orbit_key_of_endo.erase(orbit_key_of_endo.begin() +
                            static_cast<ptrdiff_t>(endo_idx));
  }
  const auto leaf_it = leaf_of_fact.find(fact);
  if (leaf_it != leaf_of_fact.end()) {
    const int leaf_id = leaf_it->second;
    leaf_of_fact.erase(leaf_it);
    Node& leaf = nodes[leaf_id];
    leaf.leaf_state = GroundFactState::kAbsent;
    if (core == EngineCore::kArena) {
      arena.SetLeafSat(leaf_id, GroundLeafSat(leaf.negated, leaf.leaf_state));
    } else {
      leaf.sat = GroundLeafSat(leaf.negated, leaf.leaf_state);
    }
    ResignNode(leaf_id);
    PatchAncestors(leaf_id);
    return;
  }
  const auto free_it = free_node_of_fact.find(fact);
  if (free_it != free_node_of_fact.end()) {
    const int node_id = free_it->second;
    free_node_of_fact.erase(free_it);
    Node& node = nodes[node_id];
    SHAPCQ_CHECK(node.free_endo > 0);
    --node.free_endo;
    if (core == EngineCore::kArena) {
      arena.SetFreeEndo(node_id, static_cast<uint32_t>(node.free_endo));
    } else {
      node.sat = node.core_sat.Convolve(CountVector::All(node.free_endo));
    }
    ResignNode(node_id);
    PatchAncestors(node_id);
    return;
  }
  if (endo) {
    // Globally free: shrinking the player count re-weights every value.
    SHAPCQ_CHECK(global_free_endo > 0);
    --global_free_endo;
    FinishMutation();
  }
  // Exogenous and outside the index: no count is affected.
}

// ---------------------------------------------------------------------------
// Public interface
// ---------------------------------------------------------------------------

ShapleyEngine::ShapleyEngine() = default;
ShapleyEngine::~ShapleyEngine() = default;
ShapleyEngine::ShapleyEngine(ShapleyEngine&&) noexcept = default;
ShapleyEngine& ShapleyEngine::operator=(ShapleyEngine&&) noexcept = default;

std::optional<EngineCore> ParseEngineCore(const std::string& name) {
  if (name == "arena") return EngineCore::kArena;
  if (name == "tree") return EngineCore::kTree;
  return std::nullopt;
}

Result<ShapleyEngine> ShapleyEngine::Build(const CQ& q, const Database& db,
                                           EngineCore core,
                                           const CancelToken* cancel) {
  if (!IsSafe(q)) {
    return Result<ShapleyEngine>::Error(
        "ShapleyEngine requires safe negation: " + q.ToString());
  }
  if (!IsSelfJoinFree(q)) {
    return Result<ShapleyEngine>::Error(
        "ShapleyEngine requires a self-join-free query: " + q.ToString());
  }
  if (!IsHierarchical(q)) {
    return Result<ShapleyEngine>::Error(
        "ShapleyEngine requires a hierarchical query: " + q.ToString());
  }

  ShapleyEngine engine;
  engine.impl_ = std::make_unique<Impl>();
  Impl& impl = *engine.impl_;
  impl.core = core;
  impl.db = &db;
  impl.endo_count = db.endogenous_count();
  impl.leaf_of_endo.assign(impl.endo_count, -1);
  impl.orbit_key_of_endo.assign(impl.endo_count, {});

  // Shared matched-fact index: every fact of every atom's relation, matched
  // once against the precompiled pattern and interned into the flat arena.
  IndexLists lists(q.atom_count());
  std::vector<size_t> atom_ids(q.atom_count());
  size_t relevant_endo = 0;
  for (size_t i = 0; i < q.atom_count(); ++i) {
    const Atom& atom = q.atom(i);
    atom_ids[i] = i;
    impl.atoms.push_back(Impl::QueryAtom{atom.relation, atom.arity(),
                                         BuildAtomPattern(atom)});
    const RelationId rel = db.schema().Find(atom.relation);
    for (FactId fact : db.facts_of(rel)) {
      if (!MatchesPattern(impl.atoms.back().pattern, db.tuple_of(fact))) {
        continue;
      }
      const uint32_t index = static_cast<uint32_t>(impl.arena_fact.size());
      impl.arena_fact.push_back(fact);
      impl.arena_endo.push_back(db.is_endogenous(fact));
      lists[i].push_back(index);
      if (db.is_endogenous(fact)) ++relevant_endo;
    }
  }
  impl.global_free_endo = impl.endo_count - relevant_endo;

  // Heuristic pre-size: the recursion creates at most a few nodes per
  // matched fact (leaf groups plus their component/root-var spine), and Node
  // is container-heavy, so growth reallocations are the expensive kind.
  impl.nodes.reserve(2 * impl.arena_fact.size() + 16);
  impl.build_cancel =
      (cancel != nullptr && cancel->Enabled()) ? cancel : nullptr;
  impl.root = impl.BuildNode(q, std::move(lists), atom_ids);
  impl.build_cancel = nullptr;  // mutations' subtree builds never cancel
  if (impl.build_cancelled) {
    return Result<ShapleyEngine>::Error(CancelToken::kCancelledMessage);
  }
  impl.baseline = impl.nodes[impl.root].sat.Convolve(
      CountVector::All(impl.global_free_endo));

  // kArena: compile the freshly built tree into the flat arena — every
  // memoized count vector moves into the contiguous cell buffer (the tree
  // nodes keep routing metadata), and the topological node order is fixed.
  if (core == EngineCore::kArena) {
    impl.arena.Reserve(impl.nodes.size());
    size_t cell_count = 0;
    for (const Impl::Node& node : impl.nodes) {
      cell_count += node.sat.universe_size() + 1;
      if (node.kind == Impl::Node::Kind::kRootVar) {
        cell_count += node.core_sat.universe_size() + 1;
      }
    }
    impl.arena.ReserveCells(cell_count);
    for (size_t id = 0; id < impl.nodes.size(); ++id) {
      impl.AbsorbNodeIntoArena(static_cast<int>(id));
    }
    impl.arena.SealStructure(impl.root);
  }

  // Orbit keys: the hash-consed signature of every node on the leaf-to-root
  // path. Equal keys -> the leaves are related by a tree automorphism ->
  // the facts are symmetric players with equal Shapley values.
  for (size_t e = 0; e < impl.endo_count; ++e) {
    int node = impl.leaf_of_endo[e];
    if (node < 0) continue;  // null player: empty key
    std::vector<int>& key = impl.orbit_key_of_endo[e];
    for (; node >= 0; node = impl.nodes[node].parent) {
      key.push_back(impl.nodes[node].sig);
    }
  }

  impl.stats.node_count = impl.nodes.size();
  impl.stats.arena_size = impl.arena_fact.size();
  for (int leaf : impl.leaf_of_endo) {
    if (leaf < 0) ++impl.stats.null_player_count;
  }
  return Result<ShapleyEngine>::Ok(std::move(engine));
}

EngineCore ShapleyEngine::core() const {
  SHAPCQ_CHECK(impl_ != nullptr);
  return impl_->core;
}

const CountVector& ShapleyEngine::BaselineSat() const {
  SHAPCQ_CHECK(impl_ != nullptr);
  return impl_->baseline;
}

Rational ShapleyEngine::Value(FactId f) {
  SHAPCQ_CHECK(impl_ != nullptr);
  Impl& impl = *impl_;
  SHAPCQ_CHECK_MSG(impl.db->is_endogenous(f), "Shapley of an exogenous fact");
  impl.RefreshOrbitKeysIfDirty();
  const size_t e = impl.db->endo_index(f);
  if (impl.leaf_of_endo[e] < 0) return Rational(0);  // null player
  return impl.OrbitValue(e);
}

std::vector<Rational> ShapleyEngine::AllValues() {
  SHAPCQ_CHECK(impl_ != nullptr);
  Impl& impl = *impl_;
  impl.RefreshOrbitKeysIfDirty();
  std::vector<Rational> values;
  values.reserve(impl.endo_count);
  bool any_null = false;
  for (size_t e = 0; e < impl.endo_count; ++e) {
    if (impl.leaf_of_endo[e] < 0) {
      any_null = true;
      values.push_back(Rational(0));
      continue;
    }
    values.push_back(impl.OrbitValue(e));
  }
  impl.stats.orbit_count = impl.orbit_values.size() + (any_null ? 1 : 0);
  return values;
}

std::vector<Rational> ShapleyEngine::AllValues(const ParallelOptions& options) {
  SHAPCQ_CHECK(impl_ != nullptr);
  Impl& impl = *impl_;
  impl.RefreshOrbitKeysIfDirty();
  const size_t num_threads =
      ThreadPool::ResolveThreadCount(options.num_threads);
  if (num_threads <= 1) return AllValues();  // the serial path, unchanged

  // Orbit representatives still missing from the memo, in first-seen
  // endo-index order — the exact representative (and therefore the exact
  // leaf) the serial path would evaluate, so every Rational below is computed
  // from the same count vectors as serially: bit-identical by construction.
  std::vector<size_t> rep_endo;
  {
    std::set<std::vector<int>> seen;
    for (size_t e = 0; e < impl.endo_count; ++e) {
      if (impl.leaf_of_endo[e] < 0) continue;  // null player
      const std::vector<int>& key = impl.orbit_key_of_endo[e];
      if (impl.orbit_values.count(key) != 0) continue;  // already memoized
      if (seen.insert(key).second) rep_endo.push_back(e);
    }
  }

  if (impl.core == EngineCore::kArena) {
    // The arena parallelizes below the value assembly: WarmValuePaths fills
    // every representative's r-vector with a level-parallel sweep (slot
    // lengths pinned by a serial prepass, so workers never move the cell
    // buffer), then the serial assembly reads warm state only. Bit-identical
    // to the serial path at every thread count by the slot-per-result
    // argument in engine_arena.h.
    if (rep_endo.size() > 1) {
      Combinatorics::Prewarm(impl.endo_count);
      std::vector<int> rep_leaves;
      rep_leaves.reserve(rep_endo.size());
      for (size_t e : rep_endo) rep_leaves.push_back(impl.leaf_of_endo[e]);
      impl.arena.WarmValuePaths(rep_leaves, impl.global_free_endo,
                                num_threads);
    }
    return AllValues();
  }

  if (rep_endo.size() > 1) {
    // Workers only ever read the caches on the hot path after this.
    Combinatorics::Prewarm(impl.endo_count);
    if (impl.context_once == nullptr) {
      impl.context_once =
          std::make_unique<std::vector<std::once_flag>>(impl.nodes.size());
    }
    // Slot-per-representative output buffer: the pool schedules dynamically,
    // but each worker writes only rep_values[i], so the merge below is
    // independent of which thread computed what.
    std::vector<Rational> rep_values(rep_endo.size());
    ThreadPool pool(std::min(num_threads, rep_endo.size()));
    pool.ParallelFor(rep_endo.size(), [&impl, &rep_endo, &rep_values](
                                          size_t i) {
      rep_values[i] = impl.ValueAtLeaf(impl.leaf_of_endo[rep_endo[i]]);
    });
    for (size_t i = 0; i < rep_endo.size(); ++i) {
      impl.orbit_values.emplace(impl.orbit_key_of_endo[rep_endo[i]],
                                std::move(rep_values[i]));
    }
  }
  // Every orbit is now memoized: the serial assembly fills the per-fact
  // vector and the orbit stats exactly as before.
  return AllValues();
}

Result<std::vector<Rational>> ShapleyEngine::AllValues(
    const ParallelOptions& options, const CancelToken* cancel) {
  using R = Result<std::vector<Rational>>;
  if (cancel == nullptr || !cancel->Enabled()) {
    return R::Ok(AllValues(options));
  }
  SHAPCQ_CHECK(impl_ != nullptr);
  Impl& impl = *impl_;
  impl.RefreshOrbitKeysIfDirty();
  const size_t num_threads =
      ThreadPool::ResolveThreadCount(options.num_threads);

  // Orbit representatives still missing from the memo, first-seen order —
  // exactly the work the uncancelled paths would do. Values already
  // memoized (by an earlier, possibly cancelled, query) are pure functions
  // of the built index, so reusing them preserves bit-identity.
  std::vector<size_t> rep_endo;
  {
    std::set<std::vector<int>> seen;
    for (size_t e = 0; e < impl.endo_count; ++e) {
      if (impl.leaf_of_endo[e] < 0) continue;
      const std::vector<int>& key = impl.orbit_key_of_endo[e];
      if (impl.orbit_values.count(key) != 0) continue;
      if (seen.insert(key).second) rep_endo.push_back(e);
    }
  }

  if (num_threads > 1 && impl.core == EngineCore::kArena &&
      rep_endo.size() > 1) {
    // Level-parallel warm of every representative's r-vector, cancellable
    // between levels (a partial warm leaves only cold watermarks behind —
    // see EngineArena::WarmValuePaths).
    Combinatorics::Prewarm(impl.endo_count);
    std::vector<int> rep_leaves;
    rep_leaves.reserve(rep_endo.size());
    for (size_t e : rep_endo) rep_leaves.push_back(impl.leaf_of_endo[e]);
    if (!impl.arena.WarmValuePaths(rep_leaves, impl.global_free_endo,
                                   num_threads, cancel)) {
      return R::Error(CancelToken::kCancelledMessage);
    }
    // Fall through to the serial assembly: every path is warm, so the
    // per-representative evaluations below are cheap reads.
  } else if (num_threads > 1 && impl.core == EngineCore::kTree &&
             rep_endo.size() > 1) {
    Combinatorics::Prewarm(impl.endo_count);
    if (impl.context_once == nullptr) {
      impl.context_once =
          std::make_unique<std::vector<std::once_flag>>(impl.nodes.size());
    }
    // Slot-per-representative outputs plus a computed flag per slot: a
    // worker that observes an expired token skips its item, and only
    // computed values enter the memo after the join — each is pure, so the
    // partial memo stays consistent for the undeadlined retry.
    std::vector<Rational> rep_values(rep_endo.size());
    std::vector<uint8_t> computed(rep_endo.size(), 0);
    ThreadPool pool(std::min(num_threads, rep_endo.size()));
    pool.ParallelFor(rep_endo.size(), [&impl, &rep_endo, &rep_values,
                                       &computed, cancel](size_t i) {
      if (cancel->Expired()) return;
      rep_values[i] = impl.ValueAtLeaf(impl.leaf_of_endo[rep_endo[i]]);
      computed[i] = 1;
    });
    bool all_computed = true;
    for (size_t i = 0; i < rep_endo.size(); ++i) {
      if (computed[i] == 0) {
        all_computed = false;
        continue;
      }
      impl.orbit_values.emplace(impl.orbit_key_of_endo[rep_endo[i]],
                                std::move(rep_values[i]));
    }
    if (!all_computed) return R::Error(CancelToken::kCancelledMessage);
    rep_endo.clear();  // every representative is memoized
  }

  // Serial (or post-warm) evaluation, polled at each orbit boundary.
  for (size_t e : rep_endo) {
    if (cancel->Expired()) return R::Error(CancelToken::kCancelledMessage);
    impl.orbit_values.emplace(impl.orbit_key_of_endo[e],
                              impl.ValueAtLeaf(impl.leaf_of_endo[e]));
  }
  return R::Ok(AllValues());
}

std::vector<size_t> ShapleyEngine::OrbitIds() {
  SHAPCQ_CHECK(impl_ != nullptr);
  Impl& impl = *impl_;
  impl.RefreshOrbitKeysIfDirty();
  // The arena memoizes the dense id vector across queries (mutations drop it
  // via InvalidateValues): the sampling tier calls OrbitIds per report, and
  // the key re-collection above is pure overhead when nothing changed.
  if (impl.core == EngineCore::kArena && impl.arena.HasOrbitIds()) {
    const std::vector<size_t>& cached = impl.arena.CachedOrbitIds();
    size_t orbit_count = 0;  // ids are dense first-seen: count = max + 1
    for (size_t id : cached) orbit_count = std::max(orbit_count, id + 1);
    impl.stats.orbit_count = orbit_count;
    return cached;
  }
  std::map<std::vector<int>, size_t> ids;  // empty key = the null orbit
  std::vector<size_t> out;
  out.reserve(impl.endo_count);
  for (size_t e = 0; e < impl.endo_count; ++e) {
    out.push_back(
        ids.emplace(impl.orbit_key_of_endo[e], ids.size()).first->second);
  }
  impl.stats.orbit_count = ids.size();
  if (impl.core == EngineCore::kArena) impl.arena.CacheOrbitIds(out);
  return out;
}

Result<FactId> ShapleyEngine::InsertFact(Database& db,
                                         const std::string& relation,
                                         Tuple tuple, bool endogenous) {
  SHAPCQ_CHECK(impl_ != nullptr);
  Impl& impl = *impl_;
  SHAPCQ_CHECK_MSG(&db == impl.db,
                   "InsertFact on a database the engine was not built on");
  const RelationId rel = db.schema().Find(relation);
  if (rel != kNoRelation && db.schema().arity(rel) != tuple.size()) {
    return Result<FactId>::Error(
        "InsertFact: arity mismatch for relation " + relation);
  }
  // A relation the schema has not seen yet (no facts at Build, none since)
  // can still be mentioned by the query: validate against the atom's arity,
  // or pattern matching would index positions past the tuple's end.
  for (const Impl::QueryAtom& atom : impl.atoms) {
    if (atom.relation == relation && atom.arity != tuple.size()) {
      return Result<FactId>::Error(
          "InsertFact: arity mismatch with query atom " + relation);
    }
  }
  if (rel != kNoRelation && db.FindFact(rel, tuple) != kNoFact) {
    return Result<FactId>::Error("InsertFact: duplicate fact in " + relation);
  }
  const FactId fact = db.AddFact(relation, std::move(tuple), endogenous);
  impl.ApplyInsert(fact);
  return Result<FactId>::Ok(fact);
}

Result<FactId> ShapleyEngine::DeleteFact(Database& db, FactId fact) {
  SHAPCQ_CHECK(impl_ != nullptr);
  Impl& impl = *impl_;
  SHAPCQ_CHECK_MSG(&db == impl.db,
                   "DeleteFact on a database the engine was not built on");
  if (fact < 0 || static_cast<size_t>(fact) >= db.fact_slot_count()) {
    return Result<FactId>::Error("DeleteFact: no such fact id " +
                                 std::to_string(fact));
  }
  if (db.is_removed(fact)) {
    return Result<FactId>::Error("DeleteFact: fact " + std::to_string(fact) +
                                 " is already removed");
  }
  const bool endo = db.is_endogenous(fact);
  const size_t endo_idx = endo ? db.endo_index(fact) : 0;
  db.RemoveFact(fact);
  impl.ApplyDelete(fact, endo, endo_idx);
  return Result<FactId>::Ok(fact);
}

Result<std::vector<FactId>> ShapleyEngine::ApplyDelta(
    Database& db, const std::vector<FactDelta>& delta) {
  std::vector<FactId> applied;
  applied.reserve(delta.size());
  for (const FactDelta& d : delta) {
    Result<FactId> result =
        d.op == FactDelta::Op::kInsert
            ? InsertFact(db, d.relation, d.tuple, d.endogenous)
            : DeleteFact(db, d.fact);
    if (!result.ok()) {
      return Result<std::vector<FactId>>::Error(
          "ApplyDelta: delta " + std::to_string(applied.size()) +
          " failed: " + result.error());
    }
    applied.push_back(result.value());
  }
  return Result<std::vector<FactId>>::Ok(std::move(applied));
}

Result<std::vector<FactId>> ShapleyEngine::ApplyDelta(
    Database& db, const std::vector<FactDelta>& delta,
    const CancelToken* cancel) {
  if (cancel == nullptr || !cancel->Enabled()) return ApplyDelta(db, delta);
  std::vector<FactId> applied;
  applied.reserve(delta.size());
  for (const FactDelta& d : delta) {
    // Poll between records only: each record's root-to-leaf patch is
    // atomic w.r.t. cancellation, so the engine always equals a fresh
    // build on the applied prefix.
    if (cancel->Expired()) {
      return Result<std::vector<FactId>>::Error(
          "ApplyDelta: " + std::string(CancelToken::kCancelledMessage) +
          " after " + std::to_string(applied.size()) + " deltas");
    }
    Result<FactId> result =
        d.op == FactDelta::Op::kInsert
            ? InsertFact(db, d.relation, d.tuple, d.endogenous)
            : DeleteFact(db, d.fact);
    if (!result.ok()) {
      return Result<std::vector<FactId>>::Error(
          "ApplyDelta: delta " + std::to_string(applied.size()) +
          " failed: " + result.error());
    }
    applied.push_back(result.value());
  }
  return Result<std::vector<FactId>>::Ok(std::move(applied));
}

ShapleyEngine::Stats ShapleyEngine::stats() const {
  SHAPCQ_CHECK(impl_ != nullptr);
  return impl_->stats;
}

size_t ShapleyEngine::ApproxMemoryBytes() const {
  SHAPCQ_CHECK(impl_ != nullptr);
  const Impl& impl = *impl_;
  size_t bytes = sizeof(Impl);
  // kArena: the cell buffer, slot table and SoA arrays (the tree loop below
  // still runs — in arena mode its vectors are [1] identities, so it counts
  // the routing metadata only).
  bytes += impl.arena.ApproxMemoryBytes();
  for (const Impl::Node& node : impl.nodes) {
    bytes += sizeof(Impl::Node);
    bytes += node.sat.ApproxMemoryBytes();
    bytes += node.core_sat.ApproxMemoryBytes();
    for (const CountVector& vec : node.context) {
      bytes += vec.ApproxMemoryBytes();
    }
    for (const CountVector& vec : node.prefix) {
      bytes += vec.ApproxMemoryBytes();
    }
    for (const CountVector& vec : node.suffix) {
      bytes += vec.ApproxMemoryBytes();
    }
    bytes += node.children.capacity() * sizeof(int);
    bytes += node.atom_ids.capacity() * sizeof(size_t);
    for (const std::vector<size_t>& positions : node.root_positions) {
      bytes += sizeof(positions) + positions.capacity() * sizeof(size_t);
    }
    // Tree maps and the stored subquery, at a flat per-entry estimate: the
    // budget needs growth tracking, not allocator-exact container overheads.
    bytes += node.child_by_value.size() * 4 * sizeof(void*);
    bytes += node.child_by_atom.size() * 4 * sizeof(void*);
    bytes += node.subquery.atom_count() * 64;
  }
  for (const Impl::QueryAtom& atom : impl.atoms) {
    bytes += sizeof(Impl::QueryAtom) + atom.relation.capacity();
  }
  bytes += impl.arena_fact.capacity() * sizeof(FactId);
  bytes += impl.arena_endo.capacity() / 8;
  bytes += impl.leaf_of_endo.capacity() * sizeof(int);
  for (const std::vector<int>& key : impl.orbit_key_of_endo) {
    bytes += sizeof(key) + key.capacity() * sizeof(int);
  }
  bytes += impl.leaf_of_fact.size() * 4 * sizeof(void*);
  bytes += impl.free_node_of_fact.size() * 4 * sizeof(void*);
  for (const auto& [canonical, sig] : impl.sig_interner) {
    (void)sig;
    bytes += canonical.capacity() + 4 * sizeof(void*);
  }
  for (const auto& [key, value] : impl.orbit_values) {
    bytes += key.capacity() * sizeof(int) + value.ApproxMemoryBytes() +
             4 * sizeof(void*);
  }
  return bytes;
}

}  // namespace shapcq
