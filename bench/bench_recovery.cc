// Durability-layer benchmarks: what crash recovery costs and what snapshot
// compaction buys back.
//
//   BM_RecoveryReplay          warm-restart a session log of N delta records
//                              (sliding-window insert/delete workload, so
//                              the live table stays ~16 facts while the
//                              history grows): replay time is linear in N.
//   BM_RecoveryReplayCompacted the same history after SNAPSHOT compaction:
//                              replay is bounded by the live table, not the
//                              delta history, so the curve goes flat.
//   BM_LogAppend               append+sync cost of one delta record per
//                              fsync policy (0 = always, 1 = batch,
//                              2 = off): the per-command durability tax.
//
// Recorded as BENCH_recovery.json by tools/run_benchmarks.sh.

#include <benchmark/benchmark.h>

#include <cstdlib>
#include <deque>
#include <string>
#include <vector>

#include "query/parser.h"
#include "service/engine_registry.h"
#include "service/session_log.h"
#include "util/check.h"

namespace {

using namespace shapcq;

constexpr char kQuery[] = "q() :- R(x), not S(x)";
constexpr size_t kLiveWindow = 16;

// A mkdtemp-backed scratch directory, removed with contents on destruction.
class TempDir {
 public:
  TempDir() {
    const char* base = std::getenv("TMPDIR");
    std::string pattern = std::string(base != nullptr ? base : "/tmp") +
                          "/shapcq_bench_recovery.XXXXXX";
    std::vector<char> buf(pattern.begin(), pattern.end());
    buf.push_back('\0');
    SHAPCQ_CHECK_MSG(mkdtemp(buf.data()) != nullptr, "mkdtemp failed");
    path_.assign(buf.data());
  }
  ~TempDir() {
    const std::string command = "rm -rf '" + path_ + "'";
    [[maybe_unused]] int rc = std::system(command.c_str());
  }
  const std::string& path() const { return path_; }

 private:
  std::string path_;
};

// Writes a session log of `delta_records` mutations: inserts with a sliding
// deletion window, so the final live table is at most kLiveWindow facts no
// matter how long the history is. Optionally compacts at the end.
void WriteHistory(const std::string& log_dir, size_t delta_records,
                  bool compact) {
  auto query = ParseCQ(kQuery);
  SHAPCQ_CHECK_MSG(query.ok(), query.error().c_str());
  EngineRegistry registry;
  auto opened = registry.Open("s", query.value());
  SHAPCQ_CHECK_MSG(opened.ok(), opened.error().c_str());
  auto manager = SessionLogManager::Open(log_dir, FsyncPolicy::kOff, 0);
  SHAPCQ_CHECK_MSG(manager.ok(), manager.error().c_str());
  SessionLogManager log = std::move(manager).value();
  SHAPCQ_CHECK_MSG(log.LogOpen("s", kQuery).ok(), "LogOpen failed");

  std::deque<std::string> live;
  size_t next = 0;
  for (size_t written = 0; written < delta_records; ++written) {
    std::string line;
    if (live.size() >= kLiveWindow) {
      line = "- " + live.front();
      live.pop_front();
    } else {
      std::string literal = "R(c" + std::to_string(next++) + ")*";
      line = "+ " + literal;
      live.push_back(std::move(literal));
    }
    SHAPCQ_CHECK_MSG(log.LogDelta("s", line).ok(), "LogDelta failed");
    auto mutation = ParseMutationLine(line);
    SHAPCQ_CHECK_MSG(mutation.ok(), mutation.error().c_str());
    auto applied = registry.ApplyMutation("s", mutation.value());
    SHAPCQ_CHECK_MSG(applied.ok(), applied.error().c_str());
  }
  if (compact) {
    const Database* db = registry.FindDatabase("s");
    SHAPCQ_CHECK_MSG(log.Compact("s", *db).ok(), "Compact failed");
  }
}

void RunRecoveryBenchmark(benchmark::State& state, bool compact) {
  TempDir dir;
  const size_t delta_records = static_cast<size_t>(state.range(0));
  WriteHistory(dir.path(), delta_records, compact);
  for (auto _ : state) {
    EngineRegistry registry;
    auto manager =
        SessionLogManager::Open(dir.path(), FsyncPolicy::kOff, 0);
    SHAPCQ_CHECK_MSG(manager.ok(), manager.error().c_str());
    SessionLogManager log = std::move(manager).value();
    auto recovered = log.Recover(&registry);
    SHAPCQ_CHECK_MSG(recovered.ok() && recovered.value() == 1,
                     "recovery failed");
    benchmark::DoNotOptimize(registry.FindDatabase("s"));
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(delta_records));
}

void BM_RecoveryReplay(benchmark::State& state) {
  RunRecoveryBenchmark(state, /*compact=*/false);
}
BENCHMARK(BM_RecoveryReplay)->Arg(64)->Arg(512)->Arg(4096);

void BM_RecoveryReplayCompacted(benchmark::State& state) {
  RunRecoveryBenchmark(state, /*compact=*/true);
}
BENCHMARK(BM_RecoveryReplayCompacted)->Arg(64)->Arg(512)->Arg(4096);

void BM_LogAppend(benchmark::State& state) {
  const auto policy = static_cast<FsyncPolicy>(state.range(0));
  TempDir dir;
  auto writer =
      SessionLogWriter::Create(dir.path() + "/s.log", policy);
  SHAPCQ_CHECK_MSG(writer.ok(), writer.error().c_str());
  SessionLogWriter log = std::move(writer).value();
  const std::string payload = "+ R(c12345)*";
  for (auto _ : state) {
    auto appended = log.Append(LogRecord::Type::kDelta, payload);
    SHAPCQ_CHECK_MSG(appended.ok(), appended.error().c_str());
    benchmark::DoNotOptimize(log.log_bytes());
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_LogAppend)
    ->Arg(static_cast<int>(FsyncPolicy::kAlways))
    ->Arg(static_cast<int>(FsyncPolicy::kBatch))
    ->Arg(static_cast<int>(FsyncPolicy::kOff));

}  // namespace

BENCHMARK_MAIN();
