#include "query/atom.h"

#include <algorithm>

namespace shapcq {

std::vector<VarId> Atom::Variables() const {
  std::vector<VarId> vars;
  for (const Term& term : terms) {
    if (term.IsVar() &&
        std::find(vars.begin(), vars.end(), term.var) == vars.end()) {
      vars.push_back(term.var);
    }
  }
  return vars;
}

bool Atom::Uses(VarId var) const {
  for (const Term& term : terms) {
    if (term.IsVar() && term.var == var) return true;
  }
  return false;
}

}  // namespace shapcq
