// Structural properties validated over generated queries: with X = ∅ the
// non-hierarchical-path criterion of Theorem 4.3 must degenerate exactly to
// the hierarchy criterion of Theorem 3.1, and witnesses must be genuine.

#include <gtest/gtest.h>

#include "datasets/query_gen.h"
#include "query/analysis.h"

namespace shapcq {
namespace {

class PathEquivalenceSweep : public ::testing::TestWithParam<int> {};

TEST_P(PathEquivalenceSweep, EmptyExoPathIffNonHierarchical) {
  Rng rng(static_cast<uint64_t>(GetParam()) * 612741 + 3);
  QueryGenOptions options;
  const CQ q = GetParam() % 2 == 0 ? RandomSafeCq(options, &rng)
                                   : RandomHierarchicalCq(options, &rng);
  EXPECT_EQ(IsHierarchical(q), !FindNonHierarchicalPath(q, {}).has_value())
      << q.ToString();
}

INSTANTIATE_TEST_SUITE_P(Seeds, PathEquivalenceSweep,
                         ::testing::Range(0, 60));

class TripletWitnessSweep : public ::testing::TestWithParam<int> {};

TEST_P(TripletWitnessSweep, WitnessesAreGenuine) {
  Rng rng(static_cast<uint64_t>(GetParam()) * 104059 + 9);
  QueryGenOptions options;
  const CQ q = RandomSafeCq(options, &rng);
  auto triplet = FindNonHierarchicalTriplet(q);
  if (!triplet.has_value()) {
    EXPECT_TRUE(IsHierarchical(q)) << q.ToString();
    return;
  }
  // Verify the witness structure by hand.
  const Atom& ax = q.atom(triplet->alpha_x);
  const Atom& axy = q.atom(triplet->alpha_xy);
  const Atom& ay = q.atom(triplet->alpha_y);
  EXPECT_TRUE(ax.Uses(triplet->x)) << q.ToString();
  EXPECT_FALSE(ax.Uses(triplet->y)) << q.ToString();
  EXPECT_TRUE(ay.Uses(triplet->y)) << q.ToString();
  EXPECT_FALSE(ay.Uses(triplet->x)) << q.ToString();
  EXPECT_TRUE(axy.Uses(triplet->x) && axy.Uses(triplet->y)) << q.ToString();
}

INSTANTIATE_TEST_SUITE_P(Seeds, TripletWitnessSweep,
                         ::testing::Range(0, 60));

class PathWitnessSweep : public ::testing::TestWithParam<int> {};

TEST_P(PathWitnessSweep, PathWitnessesAreGenuine) {
  Rng rng(static_cast<uint64_t>(GetParam()) * 7368787 + 5);
  QueryGenOptions options;
  const CQ q = RandomSafeCq(options, &rng);
  // Declare a random relation exogenous.
  ExoRelations exo;
  if (q.atom_count() > 0) exo.insert(q.atom(0).relation);
  auto path = FindNonHierarchicalPath(q, exo);
  if (!path.has_value()) return;
  const Atom& ax = q.atom(path->alpha_x);
  const Atom& ay = q.atom(path->alpha_y);
  EXPECT_EQ(exo.count(ax.relation), 0u) << q.ToString();
  EXPECT_EQ(exo.count(ay.relation), 0u) << q.ToString();
  ASSERT_GE(path->path.size(), 2u);
  EXPECT_EQ(path->path.front(), path->x);
  EXPECT_EQ(path->path.back(), path->y);
  // Interior vertices avoid Vars(αx) ∪ Vars(αy), and consecutive vertices
  // share an atom.
  const auto adjacency = GaifmanAdjacency(q);
  for (size_t i = 0; i + 1 < path->path.size(); ++i) {
    EXPECT_TRUE(adjacency[static_cast<size_t>(path->path[i])]
                         [static_cast<size_t>(path->path[i + 1])])
        << q.ToString();
  }
  for (size_t i = 1; i + 1 < path->path.size(); ++i) {
    EXPECT_FALSE(ax.Uses(path->path[i])) << q.ToString();
    EXPECT_FALSE(ay.Uses(path->path[i])) << q.ToString();
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, PathWitnessSweep, ::testing::Range(0, 60));

}  // namespace
}  // namespace shapcq
