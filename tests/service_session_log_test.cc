// Durability layer unit battery: record encode/decode, CRC validation,
// torn-tail truncation, session-id escaping, fsync policies, snapshot
// compaction, and warm-restart replay through CommandLoop/EngineRegistry.

#include <unistd.h>

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "db/textio.h"
#include "service/command_loop.h"
#include "service/session_log.h"

namespace shapcq {
namespace {

// A fresh directory under TMPDIR, removed with its contents at scope exit.
class TempDir {
 public:
  TempDir() {
    const char* base = std::getenv("TMPDIR");
    path_ = std::string(base != nullptr ? base : "/tmp") +
            "/shapcq_log_test.XXXXXX";
    std::vector<char> buf(path_.begin(), path_.end());
    buf.push_back('\0');
    EXPECT_NE(mkdtemp(buf.data()), nullptr);
    path_.assign(buf.data());
  }
  ~TempDir() {
    const std::string command = "rm -rf '" + path_ + "'";
    [[maybe_unused]] int rc = std::system(command.c_str());
  }
  const std::string& path() const { return path_; }

 private:
  std::string path_;
};

std::string ReadFile(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  return std::string(std::istreambuf_iterator<char>(in),
                     std::istreambuf_iterator<char>());
}

void WriteFile(const std::string& path, const std::string& data) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out.write(data.data(), static_cast<std::streamsize>(data.size()));
}

TEST(Crc32cTest, KnownVectors) {
  // The standard CRC-32C check value.
  EXPECT_EQ(Crc32c("123456789", 9), 0xE3069283u);
  EXPECT_EQ(Crc32c("", 0), 0u);
  // Any flipped bit must change the sum.
  EXPECT_NE(Crc32c("123456788", 9), Crc32c("123456789", 9));
}

TEST(SessionIdEscapeTest, RoundTripsHostileIds) {
  const std::vector<std::string> ids = {
      "s1", "a_b-c", "with/slash", "..", "%percent", "dots.in.id", "ünïcode"};
  for (const std::string& id : ids) {
    const std::string escaped = EscapeSessionId(id);
    EXPECT_EQ(escaped.find('/'), std::string::npos) << id;
    EXPECT_EQ(escaped.find('.'), std::string::npos) << id;
    auto back = UnescapeSessionId(escaped);
    ASSERT_TRUE(back.ok()) << id;
    EXPECT_EQ(back.value(), id);
  }
  EXPECT_FALSE(UnescapeSessionId("bad%zz").ok());
  EXPECT_FALSE(UnescapeSessionId("trunc%4").ok());
}

TEST(FsyncPolicyTest, ParsesAllNames) {
  EXPECT_EQ(ParseFsyncPolicy("always").value(), FsyncPolicy::kAlways);
  EXPECT_EQ(ParseFsyncPolicy("batch").value(), FsyncPolicy::kBatch);
  EXPECT_EQ(ParseFsyncPolicy("off").value(), FsyncPolicy::kOff);
  EXPECT_FALSE(ParseFsyncPolicy("sometimes").ok());
  EXPECT_FALSE(ParseFsyncPolicy("").ok());
  EXPECT_STREQ(FsyncPolicyName(FsyncPolicy::kBatch), "batch");
}

TEST(SessionLogTest, WriteReadRoundTrip) {
  TempDir dir;
  const std::string path = dir.path() + "/s.log";
  {
    auto writer = SessionLogWriter::Create(path, FsyncPolicy::kAlways);
    ASSERT_TRUE(writer.ok());
    SessionLogWriter log = std::move(writer).value();
    ASSERT_TRUE(log.Append(LogRecord::Type::kOpen, "q() :- R(x)").ok());
    ASSERT_TRUE(log.Append(LogRecord::Type::kDelta, "+ R(a)*").ok());
    ASSERT_TRUE(log.Append(LogRecord::Type::kSnapshot, "R(a)*").ok());
    ASSERT_TRUE(log.Append(LogRecord::Type::kDelta, "- R(a)*").ok());
    EXPECT_EQ(log.log_bytes(), ReadFile(path).size());
  }
  auto read = ReadSessionLog(path);
  ASSERT_TRUE(read.ok());
  const LogReadResult& result = read.value();
  EXPECT_FALSE(result.tail_truncated);
  ASSERT_EQ(result.records.size(), 4u);
  EXPECT_EQ(result.records[0].type, LogRecord::Type::kOpen);
  EXPECT_EQ(result.records[0].payload, "q() :- R(x)");
  EXPECT_EQ(result.records[1].type, LogRecord::Type::kDelta);
  EXPECT_EQ(result.records[1].payload, "+ R(a)*");
  EXPECT_EQ(result.records[2].type, LogRecord::Type::kSnapshot);
  EXPECT_EQ(result.records[3].payload, "- R(a)*");
  EXPECT_EQ(result.valid_bytes, ReadFile(path).size());
}

TEST(SessionLogTest, TornTailIsTruncatedToLongestValidPrefix) {
  TempDir dir;
  const std::string path = dir.path() + "/s.log";
  {
    auto writer = SessionLogWriter::Create(path, FsyncPolicy::kOff);
    ASSERT_TRUE(writer.ok());
    SessionLogWriter log = std::move(writer).value();
    ASSERT_TRUE(log.Append(LogRecord::Type::kOpen, "q() :- R(x)").ok());
    ASSERT_TRUE(log.Append(LogRecord::Type::kDelta, "+ R(a)*").ok());
  }
  const std::string intact = ReadFile(path);

  // Every strict prefix of the second record decodes to just the first.
  const size_t first_record_bytes = 8 + 1 + std::strlen("q() :- R(x)");
  for (size_t cut = first_record_bytes; cut < intact.size(); ++cut) {
    WriteFile(path, intact.substr(0, cut));
    auto read = ReadSessionLog(path);
    ASSERT_TRUE(read.ok()) << cut;
    EXPECT_EQ(read.value().records.size(), 1u) << cut;
    EXPECT_EQ(read.value().valid_bytes, first_record_bytes) << cut;
    EXPECT_EQ(read.value().tail_truncated, cut != first_record_bytes) << cut;
  }

  // Garbage appended after intact records is dropped the same way.
  WriteFile(path, intact + "\x05\x00\x00\x00garbage-without-valid-crc");
  auto read = ReadSessionLog(path);
  ASSERT_TRUE(read.ok());
  EXPECT_EQ(read.value().records.size(), 2u);
  EXPECT_TRUE(read.value().tail_truncated);
  ASSERT_TRUE(TruncateFile(path, read.value().valid_bytes).ok());
  EXPECT_EQ(ReadFile(path), intact);
}

TEST(SessionLogTest, BitFlipFailsChecksum) {
  TempDir dir;
  const std::string path = dir.path() + "/s.log";
  {
    auto writer = SessionLogWriter::Create(path, FsyncPolicy::kOff);
    ASSERT_TRUE(writer.ok());
    SessionLogWriter log = std::move(writer).value();
    ASSERT_TRUE(log.Append(LogRecord::Type::kOpen, "q() :- R(x)").ok());
    ASSERT_TRUE(log.Append(LogRecord::Type::kDelta, "+ R(a)*").ok());
  }
  std::string data = ReadFile(path);
  data[data.size() - 1] ^= 0x40;  // flip a payload bit of the last record
  WriteFile(path, data);
  auto read = ReadSessionLog(path);
  ASSERT_TRUE(read.ok());
  EXPECT_EQ(read.value().records.size(), 1u);
  EXPECT_TRUE(read.value().tail_truncated);
}

TEST(SessionLogTest, EmptyAndMissingFiles) {
  TempDir dir;
  const std::string path = dir.path() + "/s.log";
  EXPECT_FALSE(ReadSessionLog(path).ok());  // missing
  WriteFile(path, "");
  auto read = ReadSessionLog(path);
  ASSERT_TRUE(read.ok());
  EXPECT_TRUE(read.value().records.empty());
  EXPECT_FALSE(read.value().tail_truncated);
}

// Runs `lines` through a fresh CommandLoop and returns the transcript.
std::string RunLines(const CommandLoopOptions& options,
                     const std::vector<std::string>& lines) {
  CommandLoop loop(options);
  auto recovered = loop.InitDurability();
  EXPECT_TRUE(recovered.ok()) << recovered.error();
  std::string out;
  for (const std::string& line : lines) {
    std::string one;
    loop.ExecuteLine(line, &one);
    out += one;
  }
  return out;
}

// The REPORT blocks of a transcript (everything between the "report" header
// and "end report" lines, inclusive).
std::string ReportBlocks(const std::string& transcript) {
  std::string out;
  bool in_report = false;
  size_t pos = 0;
  while (pos < transcript.size()) {
    size_t eol = transcript.find('\n', pos);
    if (eol == std::string::npos) eol = transcript.size();
    const std::string line = transcript.substr(pos, eol - pos);
    if (line.rfind("report ", 0) == 0) in_report = true;
    if (in_report) out += line + "\n";
    if (line.rfind("end report", 0) == 0) in_report = false;
    pos = eol + 1;
  }
  return out;
}

TEST(SessionLogRecoveryTest, WarmRestartReplaysBitIdentical) {
  TempDir dir;
  CommandLoopOptions durable;
  durable.log_dir = dir.path() + "/logs";
  durable.fsync = FsyncPolicy::kAlways;

  const std::vector<std::string> history = {
      "OPEN uni q() :- Stud(x), not TA(x), Reg(x,y)",
      "DELTA uni + Stud(Adam)",
      "DELTA uni + Stud(Ben)",
      "DELTA uni + TA(Adam)*",
      "DELTA uni + Reg(Adam,OS)*",
      "DELTA uni + Reg(Ben,OS)*",
      "DELTA uni - TA(Adam)*",
      "DELTA uni + TA(Ben)*",
      "OPEN flat q() :- R(x)",
      "DELTA flat + R(a)*",
      "DELTA flat + R(b)*",
  };
  RunLines(durable, history);

  // Same log dir, new process-equivalent loop: databases replayed, engines
  // rebuilt lazily at REPORT.
  const std::string recovered =
      RunLines(durable, {"REPORT uni", "REPORT flat", "STATS uni"});

  // Oracle: one uninterrupted loop with durability off.
  std::vector<std::string> uninterrupted = history;
  uninterrupted.push_back("REPORT uni");
  uninterrupted.push_back("REPORT flat");
  const std::string oracle = RunLines(CommandLoopOptions{}, uninterrupted);

  EXPECT_EQ(ReportBlocks(recovered), ReportBlocks(oracle));
  // Recovered counters see the replayed deltas.
  EXPECT_NE(recovered.find("facts=5 endo=3 deltas=7"), std::string::npos)
      << recovered;
}

TEST(SessionLogRecoveryTest, SnapshotCompactionPreservesReports) {
  TempDir dir;
  CommandLoopOptions durable;
  durable.log_dir = dir.path() + "/logs";

  std::vector<std::string> history = {"OPEN s q() :- R(x), not S(x)"};
  for (int i = 0; i < 8; ++i) {
    history.push_back("DELTA s + R(c" + std::to_string(i) + ")*");
  }
  history.push_back("DELTA s - R(c0)*");
  history.push_back("DELTA s + S(c1)*");

  // Reference report, no compaction.
  std::vector<std::string> with_report = history;
  with_report.push_back("REPORT s");
  const std::string uncompacted =
      RunLines(CommandLoopOptions{}, with_report);

  // Durable run, then SNAPSHOT: the log shrinks to OPEN + checkpoint.
  CommandLoop loop(durable);
  ASSERT_TRUE(loop.InitDurability().ok());
  std::string out;
  for (const std::string& line : history) loop.ExecuteLine(line, &out);
  std::string before_stats;
  loop.ExecuteLine("STATS s", &before_stats);
  loop.ExecuteLine("SNAPSHOT s", &out);
  std::string after_stats;
  loop.ExecuteLine("STATS s", &after_stats);
  EXPECT_NE(before_stats.find("since_snapshot=10"), std::string::npos)
      << before_stats;
  EXPECT_NE(after_stats.find("since_snapshot=0"), std::string::npos)
      << after_stats;

  // Replay the compacted log: the report must match the uncompacted run.
  const std::string recovered = RunLines(durable, {"REPORT s"});
  EXPECT_EQ(ReportBlocks(recovered), ReportBlocks(uncompacted));
}

TEST(SessionLogRecoveryTest, AutoSnapshotTriggersEveryN) {
  TempDir dir;
  CommandLoopOptions durable;
  durable.log_dir = dir.path() + "/logs";
  durable.snapshot_every = 4;

  CommandLoop loop(durable);
  ASSERT_TRUE(loop.InitDurability().ok());
  std::string out;
  loop.ExecuteLine("OPEN s q() :- R(x)", &out);
  for (int i = 0; i < 6; ++i) {
    loop.ExecuteLine("DELTA s + R(c" + std::to_string(i) + ")*", &out);
  }
  std::string stats;
  loop.ExecuteLine("STATS s", &stats);
  // 6 deltas with snapshot_every=4: compacted at the 4th, 2 since.
  EXPECT_NE(stats.find("since_snapshot=2"), std::string::npos) << stats;

  const std::string recovered = RunLines(durable, {"REPORT s"});
  const std::string oracle = RunLines(
      CommandLoopOptions{},
      {"OPEN s q() :- R(x)", "DELTA s + R(c0)*", "DELTA s + R(c1)*",
       "DELTA s + R(c2)*", "DELTA s + R(c3)*", "DELTA s + R(c4)*",
       "DELTA s + R(c5)*", "REPORT s"});
  EXPECT_EQ(ReportBlocks(recovered), ReportBlocks(oracle));
}

TEST(SessionLogRecoveryTest, CloseRemovesTheLog) {
  TempDir dir;
  CommandLoopOptions durable;
  durable.log_dir = dir.path() + "/logs";
  RunLines(durable,
           {"OPEN s q() :- R(x)", "DELTA s + R(a)*", "CLOSE s"});
  EXPECT_NE(::access((durable.log_dir + "/s.log").c_str(), F_OK), 0);
  // Recovery finds nothing to resurrect.
  CommandLoop loop(durable);
  auto recovered = loop.InitDurability();
  ASSERT_TRUE(recovered.ok());
  EXPECT_EQ(recovered.value(), 0u);
}

TEST(SessionLogRecoveryTest, FailedDeltasReplayAsNoOps) {
  TempDir dir;
  CommandLoopOptions durable;
  durable.log_dir = dir.path() + "/logs";
  durable.fsync = FsyncPolicy::kAlways;

  // The duplicate insert and the delete-of-absent fail when first executed;
  // their write-ahead records must fail identically (silently) on replay.
  CommandLoop loop(durable);
  ASSERT_TRUE(loop.InitDurability().ok());
  std::string out;
  loop.ExecuteLine("OPEN s q() :- R(x)", &out);
  loop.ExecuteLine("DELTA s + R(a)*", &out);
  loop.ExecuteLine("DELTA s + R(a)*", &out);   // duplicate: error
  loop.ExecuteLine("DELTA s - R(zzz)", &out);  // absent: error
  loop.ExecuteLine("DELTA s + R(b)*", &out);
  EXPECT_EQ(loop.error_count(), 2u);

  CommandLoop replayed(durable);
  auto recovered = replayed.InitDurability();
  ASSERT_TRUE(recovered.ok());
  EXPECT_EQ(recovered.value(), 1u);
  std::string stats;
  replayed.ExecuteLine("STATS s", &stats);
  EXPECT_NE(stats.find("facts=2 endo=2"), std::string::npos) << stats;
}

TEST(SessionLogRecoveryTest, HostileSessionIdsSurviveRestart) {
  TempDir dir;
  CommandLoopOptions durable;
  durable.log_dir = dir.path() + "/logs";
  RunLines(durable, {"OPEN ../../etc q() :- R(x)",
                     "DELTA ../../etc + R(a)*"});
  const std::string recovered =
      RunLines(durable, {"STATS ../../etc"});
  EXPECT_NE(recovered.find("facts=1 endo=1"), std::string::npos) << recovered;
}

TEST(FaultInjectorTest, ParsesArmsAndCounts) {
  // The injector carries atomic net counters now, so it is no longer
  // copyable: exercise the process-wide one and disarm it when done (no
  // WAL writer runs concurrently inside this test binary).
  FaultInjector& injector = FaultInjector::Global();
  injector.Arm(FaultInjector::Point::kMidRecord, 3);
  EXPECT_EQ(injector.OnAppend(), FaultInjector::Point::kNone);
  EXPECT_EQ(injector.OnAppend(), FaultInjector::Point::kNone);
  EXPECT_EQ(injector.OnAppend(), FaultInjector::Point::kMidRecord);
  EXPECT_EQ(injector.OnAppend(), FaultInjector::Point::kNone);
  injector.Arm(FaultInjector::Point::kBeforeFsync, 2);
  EXPECT_FALSE(injector.ShouldCrashBeforeFsync());
  EXPECT_EQ(injector.OnAppend(), FaultInjector::Point::kNone);
  EXPECT_EQ(injector.OnAppend(), FaultInjector::Point::kNone);
  EXPECT_TRUE(injector.ShouldCrashBeforeFsync());
  injector.Arm(FaultInjector::Point::kNone, 0);
}

TEST(FaultInjectorTest, NetPointsCountDownAndDisarm) {
  FaultInjector& injector = FaultInjector::Global();
  // Short writes: a budget of capped sends. Each consultation consumes one
  // fault; a 1-byte send is already minimal, so its cap is "none".
  injector.ArmNet(FaultInjector::NetPoint::kShortWrite, 2);
  EXPECT_EQ(injector.NetSendCap(100), 1u);
  EXPECT_EQ(injector.NetSendCap(1), 0u);
  EXPECT_EQ(injector.NetSendCap(100), 0u);  // budget spent
  // Mid-response drop: fires on exactly the n-th send.
  injector.ArmNet(FaultInjector::NetPoint::kDropMidResponse, 2);
  EXPECT_FALSE(injector.NetDropThisSend());
  EXPECT_TRUE(injector.NetDropThisSend());
  EXPECT_FALSE(injector.NetDropThisSend());
  // EINTR storm: a budget of failed receives.
  injector.ArmNet(FaultInjector::NetPoint::kEintrRecv, 1);
  EXPECT_TRUE(injector.NetEintrThisRecv());
  EXPECT_FALSE(injector.NetEintrThisRecv());
  injector.ArmNet(FaultInjector::NetPoint::kNone, 0);
}

}  // namespace
}  // namespace shapcq
