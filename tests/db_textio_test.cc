// Database text round-tripping.

#include "db/textio.h"

#include <gtest/gtest.h>

#include "datasets/university.h"

namespace shapcq {
namespace {

TEST(TextIoTest, ParsesFactsAndKinds) {
  Database db = MustParseDatabase("R(a,b)* S(c) T()*");
  EXPECT_EQ(db.fact_count(), 3u);
  EXPECT_EQ(db.endogenous_count(), 2u);
  FactId r = db.FindFact("R", {V("a"), V("b")});
  ASSERT_NE(r, kNoFact);
  EXPECT_TRUE(db.is_endogenous(r));
  FactId s = db.FindFact("S", {V("c")});
  ASSERT_NE(s, kNoFact);
  EXPECT_FALSE(db.is_endogenous(s));
  EXPECT_NE(db.FindFact("T", {}), kNoFact);
}

TEST(TextIoTest, RoundTripsToString) {
  UniversityDb u = BuildUniversityDb();
  Database reparsed = MustParseDatabase(u.db.ToString());
  EXPECT_EQ(reparsed.ToString(), u.db.ToString());
  EXPECT_EQ(reparsed.endogenous_count(), u.db.endogenous_count());
}

TEST(TextIoTest, WhitespaceFlexible) {
  Database db = MustParseDatabase("  R(a)\n\tS(b , c)*  ");
  EXPECT_EQ(db.fact_count(), 2u);
  EXPECT_NE(db.FindFact("S", {V("b"), V("c")}), kNoFact);
}

TEST(TextIoTest, Errors) {
  EXPECT_FALSE(ParseDatabase("R(a").ok());
  EXPECT_FALSE(ParseDatabase("R a)").ok());
  EXPECT_FALSE(ParseDatabase("(a)").ok());
  EXPECT_FALSE(ParseDatabase("R(a) R(a)").ok());  // duplicate
  EXPECT_FALSE(ParseDatabase("R(,)").ok());
}

TEST(TextIoTest, ParseFactSpecHappyPath) {
  auto spec = ParseFactSpec("  Reg(Adam, OS)*  ");
  ASSERT_TRUE(spec.ok()) << spec.error();
  EXPECT_EQ(spec.value().relation, "Reg");
  EXPECT_EQ(spec.value().tuple, (Tuple{V("Adam"), V("OS")}));
  EXPECT_TRUE(spec.value().endogenous);
  EXPECT_EQ(FactSpecToString(spec.value()), "Reg(Adam,OS)*");

  auto nullary = ParseFactSpec("T()");
  ASSERT_TRUE(nullary.ok());
  EXPECT_TRUE(nullary.value().tuple.empty());
  EXPECT_FALSE(nullary.value().endogenous);
  EXPECT_EQ(FactSpecToString(nullary.value()), "T()");
}

TEST(TextIoTest, ParseFactSpecErrors) {
  // The error paths the server's DELTA command leans on: every malformed
  // literal must fail with a message, never parse loosely.
  EXPECT_FALSE(ParseFactSpec("").ok());            // empty
  EXPECT_FALSE(ParseFactSpec("   ").ok());         // whitespace only
  EXPECT_FALSE(ParseFactSpec("R").ok());           // no argument list
  EXPECT_FALSE(ParseFactSpec("(a)").ok());         // missing relation name
  EXPECT_FALSE(ParseFactSpec("R(a").ok());         // unterminated
  EXPECT_FALSE(ParseFactSpec("R(a,)").ok());       // trailing comma
  EXPECT_FALSE(ParseFactSpec("R(,a)").ok());       // leading comma
  EXPECT_FALSE(ParseFactSpec("R(a))").ok());       // trailing ')'
  EXPECT_FALSE(ParseFactSpec("R(a)**").ok());      // duplicate endo marker
  EXPECT_FALSE(ParseFactSpec("R(a)* S(b)").ok());  // two facts
  EXPECT_FALSE(ParseFactSpec("R(a) junk").ok());   // trailing garbage
  // The marker must trail the ')' immediately; detached it is junk.
  EXPECT_FALSE(ParseFactSpec("R(a) *").ok());
  // Error messages carry enough context to echo to a protocol client.
  auto dup = ParseFactSpec("R(a)**");
  EXPECT_NE(dup.error().find("trailing input"), std::string::npos);
  auto comma = ParseFactSpec("R(a,)");
  EXPECT_NE(comma.error().find("trailing comma"), std::string::npos);
}

TEST(TextIoTest, ParseMutationLine) {
  auto insert = ParseMutationLine("  + Reg(Adam,OS)*");
  ASSERT_TRUE(insert.ok()) << insert.error();
  EXPECT_EQ(insert.value().op, MutationSpec::Op::kInsert);
  EXPECT_EQ(FactSpecToString(insert.value().fact), "Reg(Adam,OS)*");

  auto erase = ParseMutationLine("- Reg(Adam,OS)");
  ASSERT_TRUE(erase.ok()) << erase.error();
  EXPECT_EQ(erase.value().op, MutationSpec::Op::kDelete);
  EXPECT_FALSE(erase.value().fact.endogenous);

  // '+R(a)' with no space still parses: the op is a single leading char.
  EXPECT_TRUE(ParseMutationLine("+R(a)").ok());

  EXPECT_FALSE(ParseMutationLine("").ok());
  EXPECT_FALSE(ParseMutationLine("   ").ok());
  EXPECT_FALSE(ParseMutationLine("R(a)").ok());      // missing op
  EXPECT_FALSE(ParseMutationLine("* R(a)").ok());    // bad op
  EXPECT_FALSE(ParseMutationLine("+ R(a").ok());     // malformed literal
  EXPECT_FALSE(ParseMutationLine("+ R(a) +S(b)").ok());  // two mutations
  auto bad_op = ParseMutationLine("* R(a)");
  EXPECT_NE(bad_op.error().find("expected '+' or '-'"), std::string::npos);
}

TEST(TextIoTest, EmptyInputIsEmptyDatabase) {
  Database db = MustParseDatabase("");
  EXPECT_EQ(db.fact_count(), 0u);
}

TEST(TextIoTest, ParseSizeStrict) {
  size_t value = 99;
  EXPECT_TRUE(ParseSizeStrict("0", &value));
  EXPECT_EQ(value, 0u);
  EXPECT_TRUE(ParseSizeStrict("42", &value));
  EXPECT_EQ(value, 42u);
  // Exactly SIZE_MAX parses; anything past it is an overflow failure, not a
  // silent saturation or wraparound (the old strtoul behavior).
  const std::string max_text = std::to_string(static_cast<size_t>(-1));
  EXPECT_TRUE(ParseSizeStrict(max_text, &value));
  EXPECT_EQ(value, static_cast<size_t>(-1));
  value = 7;
  EXPECT_FALSE(ParseSizeStrict(max_text + "0", &value));
  EXPECT_FALSE(ParseSizeStrict("99999999999999999999999", &value));
  // Digits only: no strtoul-isms (sign prefixes, whitespace, trailing junk,
  // hex, empty input).
  EXPECT_FALSE(ParseSizeStrict("+5", &value));
  EXPECT_FALSE(ParseSizeStrict("-5", &value));
  EXPECT_FALSE(ParseSizeStrict(" 5", &value));
  EXPECT_FALSE(ParseSizeStrict("5 ", &value));
  EXPECT_FALSE(ParseSizeStrict("5x", &value));
  EXPECT_FALSE(ParseSizeStrict("0x10", &value));
  EXPECT_FALSE(ParseSizeStrict("", &value));
  EXPECT_EQ(value, 7u);  // failures never write through
}

TEST(TextIoTest, GeneratedConstantNames) {
  // Fresh/pair constants use '<', '>', '#' — must survive a round trip.
  Database db;
  Value fresh = ValueDictionary::Global().Fresh("tio");
  Value pair = ValueDictionary::Global().Pair(V("a"), V("b"));
  db.AddEndo("R", {fresh, pair});
  Database reparsed = MustParseDatabase(db.ToString());
  EXPECT_EQ(reparsed.ToString(), db.ToString());
}

}  // namespace
}  // namespace shapcq
