// Bipartite graphs and independent-set counting — the #P-complete source
// problem of the paper's hardest reduction (Lemma B.3).

#ifndef SHAPCQ_REDUCTIONS_BIPARTITE_H_
#define SHAPCQ_REDUCTIONS_BIPARTITE_H_

#include <utility>
#include <vector>

#include "util/bigint.h"
#include "util/random.h"

namespace shapcq {

/// A bipartite graph with left vertices 0..left-1 and right 0..right-1.
struct BipartiteGraph {
  int left = 0;
  int right = 0;
  std::vector<std::pair<int, int>> edges;  // (left vertex, right vertex)

  int TotalVertices() const { return left + right; }
  bool HasIsolatedVertex() const;
};

/// Random bipartite graph without isolated vertices (every vertex is given
/// at least one incident edge), as the proof of Lemma B.3 assumes.
BipartiteGraph RandomBipartite(int left, int right, double edge_probability,
                               Rng* rng);

/// |IS(g)|: independent sets (subsets of all vertices spanning no edge),
/// counted exhaustively. The empty set counts.
BigInt CountIndependentSetsBruteForce(const BipartiteGraph& graph);

/// |S(g,k)| of the proof of Lemma 3.3: subsets A' ∪ B' of size k such that
/// every neighbor of a chosen left vertex is chosen. Exhaustive.
std::vector<BigInt> CountClosedSubsetsBruteForce(const BipartiteGraph& graph);

}  // namespace shapcq

#endif  // SHAPCQ_REDUCTIONS_BIPARTITE_H_
