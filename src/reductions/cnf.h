// Propositional CNF formulas: the source problems of the paper's
// NP-hardness reductions (Propositions 5.5 and 5.8, Lemma D.1).

#ifndef SHAPCQ_REDUCTIONS_CNF_H_
#define SHAPCQ_REDUCTIONS_CNF_H_

#include <string>
#include <vector>

#include "util/random.h"

namespace shapcq {

/// A literal: variable index (0-based) with polarity.
struct Literal {
  int var;
  bool positive;
};

/// A disjunction of literals.
struct Clause {
  std::vector<Literal> literals;
};

/// c1 ∧ ... ∧ cm over variables 0..num_vars-1.
struct CnfFormula {
  int num_vars = 0;
  std::vector<Clause> clauses;

  /// Truth under a full assignment.
  bool Eval(const std::vector<bool>& assignment) const;
  /// Satisfiability by exhaustive enumeration (num_vars must be small).
  bool SatisfiableBruteForce() const;
  /// e.g. "(x0 | ~x1) & (x2)".
  std::string ToString() const;
};

/// Is the formula in (2+,2−,4+−) form: every clause is (xi ∨ xj),
/// (¬xi ∨ ¬xj), or (xi ∨ xj ∨ ¬xk ∨ ¬xl)?
bool Is224Form(const CnfFormula& formula);

/// Is every clause a 3-literal clause?
bool Is3CnfForm(const CnfFormula& formula);

/// Uniform random 3CNF with the given number of clauses.
CnfFormula Random3Cnf(int num_vars, int num_clauses, Rng* rng);

/// Random (2+,2−,4+−) formula containing at least one all-positive 2-clause
/// (the non-trivial case of Proposition 5.5).
CnfFormula Random224Cnf(int num_vars, int num_clauses, Rng* rng);

}  // namespace shapcq

#endif  // SHAPCQ_REDUCTIONS_CNF_H_
