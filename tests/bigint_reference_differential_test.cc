// Differential battery: the production BigInt (64-bit limbs, inline
// small-value storage, Karatsuba, Knuth-D division, binary gcd) against the
// retained seed implementation RefBigInt (32-bit limbs, schoolbook,
// shift-subtract, Euclid — util/bigint_reference.h, kept verbatim for this
// purpose). Every kernel is exercised across magnitudes of 1..128 64-bit
// limbs, all sign patterns, and the Karatsuba threshold boundary; the bridge
// between the two classes is decimal strings, so agreement here is
// bit-identical value agreement.

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "util/bigint.h"
#include "util/bigint_reference.h"
#include "util/random.h"

namespace shapcq {
namespace {

constexpr size_t kInline = BigInt::kInlineLimbs;
constexpr size_t kKara = BigInt::kKaratsubaThreshold;

// Both implementations expose ShiftLeft/+/unary minus; assembling from the
// same 32-bit chunks produces the same value in each.
template <typename T>
T FromChunks(const std::vector<uint64_t>& limbs, bool negative) {
  T result(0);
  for (size_t i = limbs.size(); i-- > 0;) {
    result = result.ShiftLeft(32) +
             T(static_cast<int64_t>(limbs[i] >> 32));
    result = result.ShiftLeft(32) +
             T(static_cast<int64_t>(limbs[i] & 0xffffffffu));
  }
  return negative ? -result : result;
}

// Random limb patterns that stress carries: dense uniform limbs, runs of
// all-ones, power-of-two-minus-one shapes, and sparse middles.
std::vector<uint64_t> RandomLimbs(Rng* rng, size_t count) {
  std::vector<uint64_t> limbs(count);
  const uint64_t shape = rng->UniformInt(4);
  for (size_t i = 0; i < count; ++i) {
    switch (shape) {
      case 0:
        limbs[i] = rng->Next();
        break;
      case 1:
        limbs[i] = ~uint64_t{0};
        break;
      case 2:
        limbs[i] = rng->Bernoulli(0.5) ? 0 : rng->Next();
        break;
      default:
        limbs[i] = uint64_t{1} << rng->UniformInt(64);
        break;
    }
  }
  if (limbs.back() == 0) limbs.back() = 1;  // keep the intended size
  return limbs;
}

struct Pair {
  BigInt fast;
  RefBigInt ref;
};

Pair RandomPair(Rng* rng, size_t max_limbs) {
  const size_t count = 1 + rng->UniformInt(max_limbs);
  const bool negative = rng->Bernoulli(0.5);
  const std::vector<uint64_t> limbs = RandomLimbs(rng, count);
  return Pair{FromChunks<BigInt>(limbs, negative),
              FromChunks<RefBigInt>(limbs, negative)};
}

Pair PairOfLimbCount(Rng* rng, size_t count, bool negative) {
  const std::vector<uint64_t> limbs = RandomLimbs(rng, count);
  return Pair{FromChunks<BigInt>(limbs, negative),
              FromChunks<RefBigInt>(limbs, negative)};
}

class BigIntReferenceDifferential : public ::testing::TestWithParam<int> {};

TEST_P(BigIntReferenceDifferential, AddSubMulAcrossLimbSizes) {
  Rng rng(static_cast<uint64_t>(GetParam()) * 0x9e3779b97f4a7c15ULL + 11);
  for (int i = 0; i < 120; ++i) {
    const Pair a = RandomPair(&rng, 128);
    const Pair b = RandomPair(&rng, 128);
    EXPECT_EQ((a.fast + b.fast).ToString(), (a.ref + b.ref).ToString());
    EXPECT_EQ((a.fast - b.fast).ToString(), (a.ref - b.ref).ToString());
    EXPECT_EQ((a.fast * b.fast).ToString(), (a.ref * b.ref).ToString());
    // Compound assignment forms reuse the left operand's storage; they must
    // agree with the value-returning forms.
    BigInt fast_acc = a.fast;
    RefBigInt ref_acc = a.ref;
    fast_acc += b.fast;
    ref_acc += b.ref;
    EXPECT_EQ(fast_acc.ToString(), ref_acc.ToString());
    fast_acc -= b.fast;
    ref_acc -= b.ref;
    EXPECT_EQ(fast_acc.ToString(), ref_acc.ToString());
    fast_acc *= b.fast;
    ref_acc *= b.ref;
    EXPECT_EQ(fast_acc.ToString(), ref_acc.ToString());
  }
}

TEST_P(BigIntReferenceDifferential, MulAroundKaratsubaThreshold) {
  Rng rng(static_cast<uint64_t>(GetParam()) * 0x2545f4914f6cdd1dULL + 13);
  // Sweep every operand size from just under to well past the threshold, in
  // both balanced and maximally unbalanced shapes (the unbalanced case takes
  // the chunked route through the dispatcher).
  for (size_t an = kKara - 2; an <= 2 * kKara + 2; an += 3) {
    for (size_t bn : {size_t{1}, size_t{2}, kKara - 1, kKara, an}) {
      const Pair a = PairOfLimbCount(&rng, an, rng.Bernoulli(0.5));
      const Pair b = PairOfLimbCount(&rng, bn, rng.Bernoulli(0.5));
      EXPECT_EQ((a.fast * b.fast).ToString(), (a.ref * b.ref).ToString())
          << "an=" << an << " bn=" << bn;
    }
  }
  // Heavily lopsided product: several divisor-sized chunks plus a ragged
  // tail, all above the threshold.
  const Pair wide = PairOfLimbCount(&rng, 5 * kKara + 7, false);
  const Pair narrow = PairOfLimbCount(&rng, kKara + 1, false);
  EXPECT_EQ((wide.fast * narrow.fast).ToString(),
            (wide.ref * narrow.ref).ToString());
}

TEST_P(BigIntReferenceDifferential, AddProductOfMatchesReference) {
  Rng rng(static_cast<uint64_t>(GetParam()) * 0xda942042e4dd58b5ULL + 17);
  for (int i = 0; i < 60; ++i) {
    // Cover both fused-accumulate routes: schoolbook (below threshold) and
    // the pooled Karatsuba product (at/above threshold).
    const size_t size = i % 2 == 0 ? 1 + rng.UniformInt(kKara - 1)
                                   : kKara + rng.UniformInt(kKara);
    Pair acc = RandomPair(&rng, 2 * size);
    if (acc.fast.IsNegative()) {
      acc.fast = acc.fast.Abs();
      acc.ref = acc.ref.Abs();
    }
    const Pair a = PairOfLimbCount(&rng, size, false);
    const Pair b = PairOfLimbCount(&rng, 1 + rng.UniformInt(size), false);
    acc.fast.AddProductOf(a.fast, b.fast);
    acc.ref.AddProductOf(a.ref, b.ref);
    EXPECT_EQ(acc.fast.ToString(), acc.ref.ToString()) << "size=" << size;
  }
}

TEST_P(BigIntReferenceDifferential, DivModAcrossLimbSizes) {
  Rng rng(static_cast<uint64_t>(GetParam()) * 0xd6e8feb86659fd93ULL + 19);
  for (int i = 0; i < 80; ++i) {
    const Pair dividend = RandomPair(&rng, 128);
    const Pair divisor = RandomPair(&rng, 1 + rng.UniformInt(64));
    if (divisor.fast.IsZero()) continue;
    BigInt fast_q, fast_r;
    RefBigInt ref_q, ref_r;
    BigInt::DivMod(dividend.fast, divisor.fast, &fast_q, &fast_r);
    RefBigInt::DivMod(dividend.ref, divisor.ref, &ref_q, &ref_r);
    EXPECT_EQ(fast_q.ToString(), ref_q.ToString());
    EXPECT_EQ(fast_r.ToString(), ref_r.ToString());
    // Independent of the reference: the division identity and the remainder
    // bound, which pin truncated-division semantics exactly.
    EXPECT_EQ((fast_q * divisor.fast + fast_r).ToString(),
              dividend.fast.ToString());
    EXPECT_TRUE(fast_r.Abs() < divisor.fast.Abs());
  }
}

TEST_P(BigIntReferenceDifferential, GcdMatchesEuclideanReference) {
  Rng rng(static_cast<uint64_t>(GetParam()) * 0xa0761d6478bd642fULL + 23);
  for (int i = 0; i < 40; ++i) {
    // Build operands with a guaranteed common factor so the gcd is
    // interesting, including size gaps that trigger the equalizing
    // Euclid step in the binary gcd.
    const Pair common = RandomPair(&rng, 12);
    const Pair x = RandomPair(&rng, 1 + rng.UniformInt(48));
    const Pair y = RandomPair(&rng, 1 + rng.UniformInt(6));
    const BigInt fast_gcd =
        BigInt::Gcd(common.fast * x.fast, common.fast * y.fast);
    const RefBigInt ref_gcd =
        RefBigInt::Gcd(common.ref * x.ref, common.ref * y.ref);
    EXPECT_EQ(fast_gcd.ToString(), ref_gcd.ToString());
  }
}

TEST_P(BigIntReferenceDifferential, StringRoundTripsAndShifts) {
  Rng rng(static_cast<uint64_t>(GetParam()) * 0xe7037ed1a0b428dbULL + 29);
  for (int i = 0; i < 60; ++i) {
    const Pair value = RandomPair(&rng, 96);
    const std::string text = value.ref.ToString();
    EXPECT_EQ(value.fast.ToString(), text);
    EXPECT_EQ(BigInt::FromString(text).ToString(), text);
    EXPECT_EQ(value.fast.BitLength(), value.ref.BitLength());
    const size_t bits = rng.UniformInt(200);
    EXPECT_EQ(value.fast.ShiftLeft(bits).ToString(),
              value.ref.ShiftLeft(bits).ToString());
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, BigIntReferenceDifferential,
                         ::testing::Range(0, 4));

// ---------------------------------------------------------------------------
// Inline-storage (SBO) boundary: the transitions at kInlineLimbs are where
// ownership bugs would live — copies sharing buffers, moves leaking, stale
// capacities after shrink-through-zero.
// ---------------------------------------------------------------------------

BigInt ValueOfLimbCount(size_t count) {
  // 2^(64*(count-1)) + count: exactly `count` limbs, distinctive low limb.
  return BigInt(1).ShiftLeft(64 * (count - 1)) +
         BigInt(static_cast<int64_t>(count));
}

TEST(BigIntStorageTest, ApproxMemoryBytesInlineVsHeap) {
  for (size_t count = 1; count <= kInline; ++count) {
    EXPECT_EQ(ValueOfLimbCount(count).ApproxMemoryBytes(), sizeof(BigInt))
        << "inline value of " << count << " limbs must not report heap bytes";
  }
  const BigInt spilled = ValueOfLimbCount(kInline + 1);
  EXPECT_GE(spilled.ApproxMemoryBytes(),
            sizeof(BigInt) + (kInline + 1) * sizeof(uint64_t));
}

TEST(BigIntStorageTest, CopiesAreIndependentAcrossTheBoundary) {
  for (size_t count : {size_t{1}, kInline, kInline + 1, size_t{40}}) {
    BigInt original = ValueOfLimbCount(count);
    const std::string before = original.ToString();
    BigInt copy = original;
    copy += BigInt(1);
    EXPECT_EQ(original.ToString(), before) << count;
    EXPECT_NE(copy.ToString(), before) << count;
    original = copy;  // copy-assign back over a same-shape value
    EXPECT_EQ(original.ToString(), copy.ToString());
  }
}

TEST(BigIntStorageTest, MovesTransferValueAndLeaveSourceZero) {
  for (size_t count : {size_t{1}, kInline, kInline + 1, size_t{40}}) {
    BigInt original = ValueOfLimbCount(count);
    const std::string text = original.ToString();
    BigInt moved = std::move(original);
    EXPECT_EQ(moved.ToString(), text) << count;
    EXPECT_TRUE(original.IsZero()) << count;  // NOLINT(bugprone-use-after-move)
    BigInt target(7);
    target = std::move(moved);
    EXPECT_EQ(target.ToString(), text) << count;
  }
}

TEST(BigIntStorageTest, GrowAcrossInlineBoundaryInPlace) {
  // Repeated doubling walks the value from 1 limb through the inline
  // boundary into pooled heap storage via the in-place += path.
  BigInt value(1);
  RefBigInt ref(1);
  for (int i = 0; i < 70 * 64; i += 63) {
    value += value;
    RefBigInt ref_copy = ref;
    ref += ref_copy;
    ASSERT_EQ(value.ToString(), ref.ToString()) << i;
  }
}

TEST(BigIntStorageTest, AliasedCompoundOperations) {
  for (size_t count : {size_t{1}, kInline, kInline + 2, size_t{30}}) {
    BigInt value = ValueOfLimbCount(count);
    RefBigInt ref = RefBigInt::FromString(value.ToString());
    BigInt doubled = value;
    doubled += doubled;
    EXPECT_EQ(doubled.ToString(), (ref + ref).ToString());
    BigInt squared = value;
    squared *= squared;
    EXPECT_EQ(squared.ToString(), (ref * ref).ToString());
    BigInt fused = value;
    fused.AddProductOf(fused, value);  // aliased: must fall back safely
    EXPECT_EQ(fused.ToString(), (ref + ref * ref).ToString());
    BigInt cancelled = value;
    cancelled -= cancelled;
    EXPECT_TRUE(cancelled.IsZero());
  }
}

TEST(BigIntStorageTest, ThreeWayCompare) {
  const BigInt small = ValueOfLimbCount(2);
  const BigInt large = ValueOfLimbCount(kInline + 3);
  EXPECT_EQ(BigInt::Compare(small, large), -1);
  EXPECT_EQ(BigInt::Compare(large, small), 1);
  EXPECT_EQ(BigInt::Compare(large, large), 0);
  EXPECT_EQ(BigInt::Compare(-large, small), -1);
  EXPECT_EQ(BigInt::Compare(-small, -large), 1);
  EXPECT_EQ(BigInt::Compare(BigInt(0), BigInt(0)), 0);
  EXPECT_EQ(BigInt::Compare(BigInt(0), -large), 1);
}

}  // namespace
}  // namespace shapcq
