#include "datasets/university.h"

#include "query/parser.h"

namespace shapcq {

UniversityDb BuildUniversityDb() {
  UniversityDb out;
  Database& db = out.db;
  const Value adam = V("Adam"), ben = V("Ben"), caroline = V("Caroline"),
              david = V("David"), michael = V("Michael"), naomi = V("Naomi");
  const Value os = V("OS"), ic = V("IC"), dbc = V("DB"), ai = V("AI");
  const Value ee = V("EE"), cs = V("CS");

  db.AddExo("Stud", {adam});
  db.AddExo("Stud", {ben});
  db.AddExo("Stud", {caroline});
  db.AddExo("Stud", {david});

  out.ft1 = db.AddEndo("TA", {adam});
  out.ft2 = db.AddEndo("TA", {ben});
  out.ft3 = db.AddEndo("TA", {david});

  db.AddExo("Course", {os, ee});
  db.AddExo("Course", {ic, ee});
  db.AddExo("Course", {dbc, cs});
  db.AddExo("Course", {ai, cs});

  out.fr1 = db.AddEndo("Reg", {adam, os});
  out.fr2 = db.AddEndo("Reg", {adam, ai});
  out.fr3 = db.AddEndo("Reg", {ben, os});
  out.fr4 = db.AddEndo("Reg", {caroline, dbc});
  out.fr5 = db.AddEndo("Reg", {caroline, ic});

  db.AddExo("Adv", {michael, adam});
  db.AddExo("Adv", {michael, ben});
  db.AddExo("Adv", {naomi, caroline});
  db.AddExo("Adv", {michael, david});
  return out;
}

CQ UniversityQ1() {
  return MustParseCQ("q1() :- Stud(x), not TA(x), Reg(x,y)");
}

CQ UniversityQ2() {
  return MustParseCQ(
      "q2() :- Stud(x), not TA(x), Reg(x,y), not Course(y,'CS')");
}

CQ UniversityQ3() {
  return MustParseCQ(
      "q3() :- Adv(x,y), Adv(x,z), not TA(y), not TA(z), Reg(y,'IC'), "
      "Reg(z,'DB')");
}

CQ UniversityQ4() {
  return MustParseCQ(
      "q4() :- Adv(x,y), Adv(x,z), TA(y), not TA(z), Reg(z,w), not Reg(y,w)");
}

std::vector<Rational> UniversityQ1PaperValues() {
  // Example 2.3 (main text; the sum over all endogenous facts is 1, matching
  // the efficiency property since D ⊨ q1 and Dx ⊭ q1).
  return {
      Rational::Of(-3, 28),   // ft1: TA(Adam)
      Rational::Of(-2, 35),   // ft2: TA(Ben)
      Rational::Of(0, 1),     // ft3: TA(David)
      Rational::Of(37, 210),  // fr1: Reg(Adam, OS)
      Rational::Of(37, 210),  // fr2: Reg(Adam, AI)
      Rational::Of(27, 140),  // fr3: Reg(Ben, OS)
      Rational::Of(13, 42),   // fr4: Reg(Caroline, DB)
      Rational::Of(13, 42),   // fr5: Reg(Caroline, IC)
  };
}

}  // namespace shapcq
