// Cached exact factorials and binomial coefficients.
//
// The Shapley-by-counting reduction weighs |Sat(D,q,k)| counts by
// k!(n-k-1)!/n!; these helpers provide the exact BigInt ingredients with
// memoization shared across a computation.

#ifndef SHAPCQ_UTIL_COMBINATORICS_H_
#define SHAPCQ_UTIL_COMBINATORICS_H_

#include <cstddef>
#include <shared_mutex>
#include <vector>

#include "util/bigint.h"

namespace shapcq {

/// Process-wide cache of factorials and binomial coefficients.
///
/// Thread safety: both caches are guarded by one process-wide
/// std::shared_mutex. Lookups that hit the cache take a shared (reader) lock
/// and copy the value out under it; growing the cache takes the exclusive
/// lock. Any number of threads may therefore call any of these functions
/// concurrently — this is the contract the parallel ShapleyEngine relies on.
/// To keep workers on the cheap reader path, call Prewarm(n) for the largest
/// n a computation can request before fanning out (the engine does this with
/// n = |Dn|); a cold cache is still correct, just serialized while it grows.
class Combinatorics {
 public:
  /// n! as an exact integer. Returned by value: the shared cache may be
  /// grown (and reallocated) by another caller at any time, so handing out
  /// references would dangle — the copy is made under the reader lock.
  static BigInt Factorial(size_t n);
  /// C(n, k); zero when k > n.
  static BigInt Binomial(size_t n, size_t k);
  /// The full row [C(n,0), ..., C(n,n)]. Rows are memoized (lazy Pascal
  /// triangle, same pattern as the factorial cache): CountVector::All and
  /// ComplementAgainstAll request the same rows over and over inside the
  /// CntSat recursion, and building row n from row n-1 is pure additions.
  /// The cache holds O(n^2) BigInts for the largest n requested — fine for
  /// the |Dn| ≤ a few hundred this library targets. Returned by value (see
  /// Factorial).
  static std::vector<BigInt> BinomialRow(size_t n);
  /// Grows both caches to cover Factorial(n) and BinomialRow(n), so that
  /// subsequent lookups up to n are shared-lock reads. Idempotent; safe to
  /// call concurrently.
  static void Prewarm(size_t n);

 private:
  struct Caches {
    std::shared_mutex mutex;
    std::vector<BigInt> factorials{BigInt(1)};             // factorials[n] = n!
    std::vector<std::vector<BigInt>> rows{{BigInt(1)}};    // rows[n][k] = C(n,k)
  };
  static Caches& GetCaches();
  // Growth helpers; the caller must hold the exclusive lock.
  static void GrowFactorialsLocked(Caches& caches, size_t n);
  static void GrowRowsLocked(Caches& caches, size_t n);
};

}  // namespace shapcq

#endif  // SHAPCQ_UTIL_COMBINATORICS_H_
